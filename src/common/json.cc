#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace gremlin {
namespace {

const Json kNullJson;

void escape_string(std::string_view s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> parse() {
    auto v = parse_value();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) {
      return fail("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Error fail(const std::string& msg) const {
    return Error::parse("JSON: " + msg + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        auto s = parse_string();
        if (!s.ok()) return s.error();
        return Json(std::move(s.value()));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return Json(true);
        }
        return fail("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return Json(false);
        }
        return fail("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return Json(nullptr);
        }
        return fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Result<Json> parse_number() {
    const size_t start = pos_;
    if (consume('-')) {
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // '+'/'-' only valid after e/E, but strtod validates for us.
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return fail("invalid number");
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (!is_double) {
      int64_t out = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), out);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Json(out);
    }
    const std::string buf(tok);
    char* end = nullptr;
    const double d = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) return fail("invalid number");
    return Json(d);
  }

  Result<std::string> parse_string() {
    if (!consume('"')) return fail("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs not combined;
            // rules/records never need them).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return fail("unterminated string");
  }

  Result<Json> parse_array() {
    consume('[');
    Json::Array arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    for (;;) {
      auto v = parse_value();
      if (!v.ok()) return v;
      arr.push_back(std::move(v.value()));
      skip_ws();
      if (consume(']')) return Json(std::move(arr));
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  Result<Json> parse_object() {
    consume('{');
    Json::Object obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key.ok()) return key.error();
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      auto v = parse_value();
      if (!v.ok()) return v;
      obj[std::move(key.value())] = std::move(v.value());
      skip_ws();
      if (consume('}')) return Json(std::move(obj));
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const Json& Json::operator[](std::string_view key) const {
  if (!is_object()) return kNullJson;
  const auto& obj = std::get<Object>(v_);
  const auto it = obj.find(std::string(key));
  return it == obj.end() ? kNullJson : it->second;
}

Json& Json::operator[](std::string_view key) {
  if (is_null()) v_ = Object{};
  return std::get<Object>(v_)[std::string(key)];
}

bool Json::contains(std::string_view key) const {
  return is_object() &&
         std::get<Object>(v_).count(std::string(key)) > 0;
}

void Json::push_back(Json v) {
  if (is_null()) v_ = Array{};
  std::get<Array>(v_).push_back(std::move(v));
}

size_t Json::size() const {
  if (is_array()) return std::get<Array>(v_).size();
  if (is_object()) return std::get<Object>(v_).size();
  return 0;
}

void Json::dump_to(std::string* out, int indent, int depth) const {
  const std::string pad(indent > 0 ? static_cast<size_t>(indent * (depth + 1)) : 0, ' ');
  const std::string close_pad(indent > 0 ? static_cast<size_t>(indent * depth) : 0, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  if (is_null()) {
    out->append("null");
  } else if (is_bool()) {
    out->append(std::get<bool>(v_) ? "true" : "false");
  } else if (is_int()) {
    out->append(std::to_string(std::get<int64_t>(v_)));
  } else if (is_double()) {
    const double d = std::get<double>(v_);
    if (std::isfinite(d)) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      out->append(buf);
    } else {
      out->append("null");  // JSON has no Inf/NaN
    }
  } else if (is_string()) {
    escape_string(std::get<std::string>(v_), out);
  } else if (is_array()) {
    const auto& arr = std::get<Array>(v_);
    if (arr.empty()) {
      out->append("[]");
      return;
    }
    out->push_back('[');
    out->append(nl);
    for (size_t i = 0; i < arr.size(); ++i) {
      out->append(pad);
      arr[i].dump_to(out, indent, depth + 1);
      if (i + 1 < arr.size()) out->push_back(',');
      out->append(nl);
    }
    out->append(close_pad);
    out->push_back(']');
  } else {
    const auto& obj = std::get<Object>(v_);
    if (obj.empty()) {
      out->append("{}");
      return;
    }
    out->push_back('{');
    out->append(nl);
    size_t i = 0;
    for (const auto& [k, v] : obj) {
      out->append(pad);
      escape_string(k, out);
      out->push_back(':');
      if (indent > 0) out->push_back(' ');
      v.dump_to(out, indent, depth + 1);
      if (++i < obj.size()) out->push_back(',');
      out->append(nl);
    }
    out->append(close_pad);
    out->push_back('}');
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(&out, indent, 0);
  return out;
}

Result<Json> Json::parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace gremlin
