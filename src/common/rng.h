// Rng: deterministic pseudo-random stream (SplitMix64 core).
//
// Every stochastic decision in Gremlin (probabilistic fault rules, workload
// jitter, the chaos baseline) draws from an explicitly seeded Rng so that
// experiments are reproducible bit-for-bit. Never use std::rand or
// std::random_device inside the library.
#pragma once

#include <cstdint>
#include <string_view>

namespace gremlin {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  // Derives an independent stream for a named component, so that e.g. each
  // sidecar agent consumes randomness without perturbing its peers.
  Rng fork(std::string_view label) const;

  uint64_t next_u64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t next_below(uint64_t bound);

  // Uniform double in [0, 1).
  double next_double();

  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  // Uniform integer in [lo, hi] inclusive.
  int64_t uniform(int64_t lo, int64_t hi);

  // Exponential with the given mean (> 0), in the same units as mean.
  double exponential(double mean);

 private:
  uint64_t state_;
};

// Stateless 64-bit string hash (FNV-1a), used for stream derivation and
// log-store sharding.
uint64_t hash64(std::string_view s);

// Counter-based (stateless) draws. Unlike an Rng stream, where the value of
// draw N depends on how many draws preceded it, counter_u64(key, n) depends
// only on (key, n): every consumer that derives the same key reads the same
// sequence regardless of interleaving with other streams. Probabilistic fault
// rules key their draws on (experiment seed, agent, rule id) with a per-rule
// attempt counter, which is what keeps outcomes byte-identical across thread
// counts, process shards, and warm/cold worlds.
uint64_t counter_u64(uint64_t key, uint64_t counter);

// Uniform double in [0, 1) from the same keyed stream.
double counter_double(uint64_t key, uint64_t counter);

}  // namespace gremlin
