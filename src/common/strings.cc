#include "common/strings.h"

#include <cctype>

namespace gremlin {

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool replace_first(std::string* s, std::string_view needle,
                   std::string_view replacement) {
  if (needle.empty()) return false;
  const size_t pos = s->find(needle);
  if (pos == std::string::npos) return false;
  s->replace(pos, needle.size(), replacement);
  return true;
}

int replace_all(std::string* s, std::string_view needle,
                std::string_view replacement) {
  if (needle.empty()) return 0;
  int count = 0;
  size_t pos = 0;
  while ((pos = s->find(needle, pos)) != std::string::npos) {
    s->replace(pos, needle.size(), replacement);
    pos += replacement.size();
    ++count;
  }
  return count;
}

}  // namespace gremlin
