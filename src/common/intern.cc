#include "common/intern.h"

// LeakSanitizer annotation for the intentionally-leaked global table (and,
// transitively, everything it owns: chunks, slot strings, retired index
// snapshots). Clang exposes __has_feature; GCC defines __SANITIZE_ADDRESS__.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GREMLIN_HAS_LSAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define GREMLIN_HAS_LSAN 1
#endif
#if defined(GREMLIN_HAS_LSAN)
#include <sanitizer/lsan_interface.h>
#endif

namespace gremlin {

SymbolTable& SymbolTable::global() {
  static SymbolTable* table = new SymbolTable();  // never destroyed: views
#if defined(GREMLIN_HAS_LSAN)                     // must outlive all users
  static const bool lsan_ignored = [] {
    __lsan_ignore_object(table);
    return true;
  }();
  (void)lsan_ignored;
#endif
  return *table;
}

SymbolTable::SymbolTable() {
  // id 0 == the empty string.
  next_id_.store(1, std::memory_order_relaxed);
  const std::string* s = publish(0, "");
  std::lock_guard lock(mu_);
  index_.emplace(std::string_view(*s), 0);
}

Symbol SymbolTable::intern(std::string_view text) {
  if (text.empty()) return Symbol();
  std::lock_guard lock(mu_);
  return intern_locked(text);
}

Symbol SymbolTable::intern_locked(std::string_view text) {
  const auto it = index_.find(text);
  if (it != index_.end()) return Symbol(it->second, 0);

  const uint32_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (id >= kCapacity) return Symbol();  // table full: degrade to ""
  const std::string* s = publish(id, text);
  index_.emplace(std::string_view(*s), id);
  return Symbol(id, 0);
}

std::optional<uint32_t> SymbolTable::reserve_block(uint32_t count) {
  const uint32_t start = next_id_.fetch_add(count, std::memory_order_relaxed);
  if (start >= kCapacity || kCapacity - start < count) return std::nullopt;
  return start;
}

const std::string* SymbolTable::publish(uint32_t id, std::string_view text) {
  const size_t chunk_idx = id >> kChunkBits;
  if (chunk_idx >= kMaxChunks) return nullptr;
  Chunk* chunk = chunks_[chunk_idx].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    Chunk* fresh = new Chunk();
    if (chunks_[chunk_idx].compare_exchange_strong(chunk, fresh,
                                                   std::memory_order_release,
                                                   std::memory_order_acquire)) {
      chunk = fresh;
    } else {
      delete fresh;  // another thread won the race; `chunk` holds theirs
    }
  }
  // The slot belongs exclusively to this id's owner (mutex path or the
  // shard that reserved the block), so a plain release store publishes the
  // fully constructed string to lock-free readers.
  const std::string* s = new std::string(text);
  chunk->entries[id & (kChunkSize - 1)].store(s, std::memory_order_release);
  published_.fetch_add(1, std::memory_order_release);
  return s;
}

void SymbolTable::merge(
    std::vector<std::pair<const std::string*, uint32_t>>& pending) {
  std::lock_guard lock(mu_);
  for (const auto& [text, id] : pending) {
    // First writer wins; a losing id remains a valid alias (its slot is
    // already published, so it stringifies identically forever).
    index_.try_emplace(std::string_view(*text), id);
  }
  pending.clear();
  refresh_snapshot_locked();
}

void SymbolTable::refresh_snapshot_locked() {
  const Index* current = snapshot_.load(std::memory_order_relaxed);
  if (current != nullptr && current->size() == index_.size()) return;
  auto snap = std::make_unique<const Index>(index_);
  snapshot_.store(snap.get(), std::memory_order_release);
  // Old snapshots are retired, not freed: lock-free readers may still hold
  // them. Retirement count is bounded by vocabulary growth events, not by
  // merges — a warmed-up campaign stops rebuilding entirely.
  retired_.push_back(std::move(snap));
}

std::optional<Symbol> SymbolTable::find(std::string_view text) const {
  if (text.empty()) return Symbol();
  std::lock_guard lock(mu_);
  const auto it = index_.find(text);
  if (it == index_.end()) return std::nullopt;
  return Symbol(it->second, 0);
}

std::string_view SymbolTable::view(uint32_t id) const {
  const size_t chunk_idx = id >> kChunkBits;
  if (chunk_idx >= kMaxChunks) return {};
  const Chunk* chunk = chunks_[chunk_idx].load(std::memory_order_acquire);
  if (chunk == nullptr) return {};
  const std::string* s =
      chunk->entries[id & (kChunkSize - 1)].load(std::memory_order_acquire);
  return s == nullptr ? std::string_view{} : std::string_view(*s);
}

ShardSymbolTable::ShardSymbolTable(SymbolTable* global) : global_(global) {
  // One cold lock at worker start so the first experiments see every name
  // interned during process setup without minting aliases for them.
  std::lock_guard lock(global_->mu_);
  global_->refresh_snapshot_locked();
}

ShardSymbolTable::~ShardSymbolTable() { merge(); }

Symbol ShardSymbolTable::intern(std::string_view text) {
  if (text.empty()) return Symbol();
  const auto it = cache_.find(text);
  if (it != cache_.end()) return Symbol(it->second, 0);

  if (const SymbolTable::Index* snap = global_->snapshot()) {
    const auto hit = snap->find(text);
    if (hit != snap->end()) {
      // Snapshot keys view into never-freed slot strings; safe to keep.
      cache_.emplace(hit->first, hit->second);
      return Symbol(hit->second, 0);
    }
  }

  if (block_cur_ == block_end_) {
    const auto start = global_->reserve_block(kBlockSize);
    if (!start.has_value()) return global_->intern(text);  // table ~full
    block_cur_ = *start;
    block_end_ = *start + kBlockSize;
  }
  const uint32_t id = block_cur_++;
  const std::string* s = global_->publish(id, text);
  if (s == nullptr) return global_->intern(text);  // degrade like full table
  cache_.emplace(std::string_view(*s), id);
  pending_.emplace_back(s, id);
  return Symbol(id, 0);
}

std::optional<Symbol> ShardSymbolTable::find(std::string_view text) const {
  if (text.empty()) return Symbol();
  const auto it = cache_.find(text);
  if (it != cache_.end()) return Symbol(it->second, 0);
  if (const SymbolTable::Index* snap = global_->snapshot()) {
    const auto hit = snap->find(text);
    if (hit != snap->end()) return Symbol(hit->second, 0);
  }
  // Not seen by this shard: no record written here carries it, so the
  // canonical (or absent) global answer is consistent for queries.
  return global_->find(text);
}

void ShardSymbolTable::merge() {
  if (pending_.empty()) return;
  global_->merge(pending_);
}

std::optional<Symbol> find_symbol(std::string_view text) {
  if (ShardSymbolTable* shard = intern_detail::tls_shard) {
    return shard->find(text);
  }
  return SymbolTable::global().find(text);
}

}  // namespace gremlin
