#include "common/intern.h"

namespace gremlin {

SymbolTable& SymbolTable::global() {
  static SymbolTable* table = new SymbolTable();  // never destroyed: views
  return *table;                                  // must outlive all users
}

SymbolTable::SymbolTable() {
  std::lock_guard lock(mu_);
  (void)intern_locked("");  // id 0 == the empty string
}

Symbol SymbolTable::intern(std::string_view text) {
  if (text.empty()) return Symbol();
  std::lock_guard lock(mu_);
  return intern_locked(text);
}

Symbol SymbolTable::intern_locked(std::string_view text) {
  const auto it = index_.find(text);
  if (it != index_.end()) return Symbol(it->second, 0);

  const uint32_t id = count_.load(std::memory_order_relaxed);
  const size_t chunk_idx = id >> kChunkBits;
  if (chunk_idx >= kMaxChunks) return Symbol();  // table full: degrade to ""
  Chunk* chunk = chunks_[chunk_idx].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Chunk();
    // Release so that readers who obtain `id` via the count_ acquire below
    // also see the chunk pointer and its entry fully constructed.
    chunks_[chunk_idx].store(chunk, std::memory_order_release);
  }
  std::string& slot = chunk->entries[id & (kChunkSize - 1)];
  slot.assign(text);
  index_.emplace(std::string_view(slot), id);
  count_.store(id + 1, std::memory_order_release);
  return Symbol(id, 0);
}

std::optional<Symbol> SymbolTable::find(std::string_view text) const {
  if (text.empty()) return Symbol();
  std::lock_guard lock(mu_);
  const auto it = index_.find(text);
  if (it == index_.end()) return std::nullopt;
  return Symbol(it->second, 0);
}

std::string_view SymbolTable::view(uint32_t id) const {
  if (id >= count_.load(std::memory_order_acquire)) return {};
  const Chunk* chunk = chunks_[id >> kChunkBits].load(std::memory_order_acquire);
  if (chunk == nullptr) return {};
  return chunk->entries[id & (kChunkSize - 1)];
}

}  // namespace gremlin
