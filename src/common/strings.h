// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gremlin {

std::string to_lower(std::string_view s);
std::string_view trim(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
bool iequals(std::string_view a, std::string_view b);

// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Replaces the first occurrence of `needle` with `replacement`; returns
// whether a replacement happened.
bool replace_first(std::string* s, std::string_view needle,
                   std::string_view replacement);

// Replaces every occurrence of `needle`; returns the number of replacements.
int replace_all(std::string* s, std::string_view needle,
                std::string_view replacement);

}  // namespace gremlin
