#include "common/wire.h"

#include <cerrno>
#include <cstring>

#include <unistd.h>

namespace gremlin::wire {

bool write_all(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t written = ::write(fd, p, n);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += written;
    n -= static_cast<size_t>(written);
  }
  return true;
}

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) return false;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.push_back(static_cast<char>(len & 0xff));
  frame.push_back(static_cast<char>((len >> 8) & 0xff));
  frame.push_back(static_cast<char>((len >> 16) & 0xff));
  frame.push_back(static_cast<char>((len >> 24) & 0xff));
  frame.append(payload.data(), payload.size());
  return write_all(fd, frame.data(), frame.size());
}

bool FrameBuffer::next(std::string* payload) {
  if (corrupt_) return false;
  const size_t avail = buf_.size() - consumed_;
  if (avail < 4) return false;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buf_.data()) + consumed_;
  const uint32_t len = static_cast<uint32_t>(p[0]) |
                       (static_cast<uint32_t>(p[1]) << 8) |
                       (static_cast<uint32_t>(p[2]) << 16) |
                       (static_cast<uint32_t>(p[3]) << 24);
  if (len > kMaxFramePayload) {
    corrupt_ = true;
    return false;
  }
  if (avail < 4 + static_cast<size_t>(len)) return false;
  payload->assign(buf_, consumed_ + 4, len);
  consumed_ += 4 + static_cast<size_t>(len);
  // Reclaim consumed prefix once it dominates the buffer, so long streams
  // don't grow without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  return true;
}

}  // namespace gremlin::wire
