#include "common/duration.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace gremlin {

Result<Duration> parse_duration(std::string_view text) {
  if (text.empty()) {
    return Error::parse("empty duration");
  }
  size_t i = 0;
  bool seen_digit = false;
  bool seen_dot = false;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) ||
          (text[i] == '.' && !seen_dot))) {
    if (text[i] == '.') {
      seen_dot = true;
    } else {
      seen_digit = true;
    }
    ++i;
  }
  if (!seen_digit) {
    return Error::parse("duration must start with a number: '" +
                        std::string(text) + "'");
  }
  const std::string number(text.substr(0, i));
  const std::string_view unit = text.substr(i);
  const double magnitude = std::strtod(number.c_str(), nullptr);

  double scale_us = 0;
  if (unit == "us") {
    scale_us = 1;
  } else if (unit == "ms") {
    scale_us = 1e3;
  } else if (unit == "s" || unit == "sec") {
    scale_us = 1e6;
  } else if (unit == "m" || unit == "min") {
    scale_us = 60e6;
  } else if (unit == "h" || unit == "hour" || unit == "hours") {
    scale_us = 3600e6;
  } else if (unit.empty()) {
    return Error::parse("duration missing unit: '" + std::string(text) + "'");
  } else {
    return Error::parse("unknown duration unit '" + std::string(unit) + "'");
  }
  return Duration(static_cast<int64_t>(std::llround(magnitude * scale_us)));
}

std::string format_duration(Duration d) {
  const int64_t us = d.count();
  auto divides = [us](int64_t unit) { return us % unit == 0; };
  if (us == 0) return "0s";
  if (divides(3600LL * 1000 * 1000)) {
    return std::to_string(us / (3600LL * 1000 * 1000)) + "h";
  }
  if (divides(60LL * 1000 * 1000)) {
    return std::to_string(us / (60LL * 1000 * 1000)) + "min";
  }
  if (divides(1000LL * 1000)) {
    return std::to_string(us / (1000LL * 1000)) + "s";
  }
  if (divides(1000)) {
    return std::to_string(us / 1000) + "ms";
  }
  return std::to_string(us) + "us";
}

}  // namespace gremlin
