// Glob: the pattern language used by fault rules to select request flows.
//
// The paper scopes fault injection to synthetic traffic by matching request
// IDs against patterns such as "test-*" (Section 5). We implement a small
// glob dialect:
//   *      matches any run of characters (including empty)
//   ?      matches exactly one character
//   [a-z]  character class; leading '!' negates
//   \x     escapes the next character
// Matching is linear-time (iterative backtracking on the last '*').
#pragma once

#include <string>
#include <string_view>

namespace gremlin {

class Glob {
 public:
  Glob() : pattern_("*") {}
  explicit Glob(std::string pattern) : pattern_(std::move(pattern)) {}

  const std::string& pattern() const { return pattern_; }

  bool matches(std::string_view text) const;

  // True when the pattern matches every string ("*" or empty-equivalent).
  bool match_all() const { return pattern_ == "*"; }

 private:
  std::string pattern_;
};

// One-shot helper.
bool glob_match(std::string_view pattern, std::string_view text);

}  // namespace gremlin
