// Glob: the pattern language used by fault rules to select request flows.
//
// The paper scopes fault injection to synthetic traffic by matching request
// IDs against patterns such as "test-*" (Section 5). We implement a small
// glob dialect:
//   *      matches any run of characters (including empty)
//   ?      matches exactly one character
//   [a-z]  character class; leading '!' negates
//   \x     escapes the next character
// Matching is linear-time (iterative backtracking on the last '*').
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace gremlin {

class Glob {
 public:
  Glob() : pattern_("*") {}
  explicit Glob(std::string pattern) : pattern_(std::move(pattern)) {}

  const std::string& pattern() const { return pattern_; }

  bool matches(std::string_view text) const;

  // True when the pattern matches every string ("*" or empty-equivalent).
  bool match_all() const { return pattern_ == "*"; }

  // True when the pattern contains no metacharacters, so it matches exactly
  // one string: itself. Lets indexed stores answer the query with a point
  // lookup instead of a scan.
  bool is_literal() const;

  // When the pattern is a literal prefix followed by one trailing '*'
  // ("test-*"), returns that prefix. Nullopt for any other shape, including
  // escaped patterns (whose matched text differs from the raw pattern).
  std::optional<std::string_view> literal_prefix() const;

 private:
  std::string pattern_;
};

// One-shot helper.
bool glob_match(std::string_view pattern, std::string_view text);

}  // namespace gremlin
