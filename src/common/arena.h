// Arena / MemoryPool: per-worker allocation backing for the experiment hot
// path.
//
// A campaign worker runs thousands of short experiments, each of which
// builds and tears down the same transient object population (outbound
// calls, request contexts, log records, index nodes, queue buffers). Paying
// malloc/free — and the allocator's cross-thread synchronization — for each
// of those is what keeps warm-world experiments at thousands of allocations
// apiece and makes parallel campaigns contend on the global heap.
//
// Two layers:
//   - Arena: block-chained bump-pointer allocator. allocate() is a pointer
//     bump; reset() rewinds to the first block but RETAINS every block, so
//     a warm world's steady state touches the real heap zero times.
//   - MemoryPool: size-class free lists on top of an Arena, giving malloc/
//     free-shaped reuse (deallocate returns a chunk to its class list; the
//     next same-class allocate pops it). This is what std-container nodes
//     and allocate_shared control blocks need: their lifetimes interleave,
//     so pure bump allocation would bleed memory within one experiment.
//
// Neither layer is thread-safe: a pool belongs to exactly one worker (or is
// guarded by its owner's lock, as LogStore does). That is the point — the
// parallel campaign shares no allocator state across workers.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace gremlin {

class Arena {
 public:
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  explicit Arena(size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Bump-allocates `bytes` aligned to `align` (power of two, <= 16 on the
  // fast path; larger alignments are honoured but may waste padding).
  void* allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    if (cur_ != nullptr) {
      char* aligned = align_up(cur_, align);
      if (aligned <= end_ && static_cast<size_t>(end_ - aligned) >= bytes) {
        cur_ = aligned + bytes;
        allocated_ += bytes;
        return aligned;
      }
    }
    return allocate_slow(bytes, align);
  }

  // Rewinds to the start but keeps every block for reuse. All memory handed
  // out since the last reset is invalidated.
  void reset() {
    cur_block_ = 0;
    allocated_ = 0;
    if (blocks_.empty()) {
      cur_ = end_ = nullptr;
    } else {
      cur_ = blocks_[0].data.get();
      end_ = cur_ + blocks_[0].size;
    }
  }

  // Bytes handed out since construction/reset (excludes alignment padding).
  size_t bytes_allocated() const { return allocated_; }
  // Total capacity across retained blocks.
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  static char* align_up(char* p, size_t align) {
    const uintptr_t v = reinterpret_cast<uintptr_t>(p);
    return reinterpret_cast<char*>((v + align - 1) & ~(uintptr_t{align} - 1));
  }

  void* allocate_slow(size_t bytes, size_t align);

  std::vector<Block> blocks_;
  size_t cur_block_ = 0;  // block currently being bumped (when non-empty)
  char* cur_ = nullptr;
  char* end_ = nullptr;
  size_t block_bytes_;
  size_t allocated_ = 0;
};

// Size-class free lists over an Arena. Small sizes (<= 1 KiB) round to
// 16-byte granules; mid sizes round to powers of two up to 1 MiB; anything
// larger falls through to operator new (off the hot path by construction).
class MemoryPool {
 public:
  explicit MemoryPool(size_t block_bytes = Arena::kDefaultBlockBytes)
      : arena_(block_bytes) {}

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  void* allocate(size_t bytes) {
    const size_t cls = class_index(bytes);
    if (cls >= kNumClasses) return ::operator new(bytes);
    if (FreeNode* node = free_[cls]) {
      free_[cls] = node->next;
      ++recycled_;
      return node;
    }
    ++fresh_;
    return arena_.allocate(class_size(cls), kGranule);
  }

  void deallocate(void* p, size_t bytes) {
    const size_t cls = class_index(bytes);
    if (cls >= kNumClasses) {
      ::operator delete(p);
      return;
    }
    FreeNode* node = static_cast<FreeNode*>(p);
    node->next = free_[cls];
    free_[cls] = node;
  }

  // Invalidates everything ever allocated (callers must have dropped all
  // objects) and retains the arena blocks for reuse.
  void reset() {
    free_.fill(nullptr);
    arena_.reset();
  }

  const Arena& arena() const { return arena_; }
  // Chunks served from a free list vs. bump-allocated — the warm-world
  // steady state should be all recycled / no fresh.
  uint64_t recycled() const { return recycled_; }
  uint64_t fresh() const { return fresh_; }

 private:
  static constexpr size_t kGranule = 16;
  static constexpr size_t kSmallLimit = 1024;          // 64 granule classes
  static constexpr size_t kSmallClasses = kSmallLimit / kGranule;
  static constexpr size_t kLargeShiftBase = 11;        // first pow2 class: 2 KiB
  static constexpr size_t kLargeShiftMax = 20;         // last pow2 class: 1 MiB
  static constexpr size_t kNumClasses =
      kSmallClasses + (kLargeShiftMax - kLargeShiftBase + 1);

  struct FreeNode {
    FreeNode* next;
  };

  static size_t class_index(size_t bytes) {
    if (bytes <= kSmallLimit) {
      return bytes == 0 ? 0 : (bytes + kGranule - 1) / kGranule - 1;
    }
    size_t shift = kLargeShiftBase;
    while (shift <= kLargeShiftMax && (size_t{1} << shift) < bytes) ++shift;
    if (shift > kLargeShiftMax) return kNumClasses;
    return kSmallClasses + (shift - kLargeShiftBase);
  }

  static size_t class_size(size_t cls) {
    if (cls < kSmallClasses) return (cls + 1) * kGranule;
    return size_t{1} << (kLargeShiftBase + (cls - kSmallClasses));
  }

  Arena arena_;
  std::array<FreeNode*, kNumClasses> free_{};
  uint64_t recycled_ = 0;
  uint64_t fresh_ = 0;
};

// std-compatible allocator over a MemoryPool. A null pool degrades to the
// global heap, so default-constructed containers keep working. Propagates on
// move/swap so pool-backed containers can be moved without mixing pools.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  PoolAllocator() noexcept = default;
  explicit PoolAllocator(MemoryPool* pool) noexcept : pool_(pool) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) noexcept
      : pool_(other.pool()) {}

  T* allocate(size_t n) {
    const size_t bytes = n * sizeof(T);
    if (pool_ != nullptr && alignof(T) <= kGranuleAlign) {
      return static_cast<T*>(pool_->allocate(bytes));
    }
    return static_cast<T*>(::operator new(bytes));
  }
  void deallocate(T* p, size_t n) noexcept {
    const size_t bytes = n * sizeof(T);
    if (pool_ != nullptr && alignof(T) <= kGranuleAlign) {
      pool_->deallocate(p, bytes);
    } else {
      ::operator delete(p);
    }
  }

  MemoryPool* pool() const noexcept { return pool_; }

  friend bool operator==(const PoolAllocator& a, const PoolAllocator& b) {
    return a.pool_ == b.pool_;
  }
  friend bool operator!=(const PoolAllocator& a, const PoolAllocator& b) {
    return a.pool_ != b.pool_;
  }

 private:
  static constexpr size_t kGranuleAlign = 16;

  MemoryPool* pool_ = nullptr;
};

// allocate_shared through the pool: object + control block in one pooled
// chunk, recycled across experiments. Null pool falls back to make_shared.
template <typename T, typename... Args>
std::shared_ptr<T> make_pooled(MemoryPool* pool, Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>(pool),
                                 std::forward<Args>(args)...);
}

}  // namespace gremlin
