// Json: a small self-contained JSON document model, parser and serializer.
//
// Used for the real proxy's REST control API (rule upload, record download)
// and for exporting benchmark series. Objects keep keys in sorted order
// (std::map) so serialized output is deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"

namespace gremlin {

class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}          // NOLINT
  Json(bool b) : v_(b) {}                        // NOLINT
  Json(double d) : v_(d) {}                      // NOLINT
  Json(int i) : v_(static_cast<int64_t>(i)) {}   // NOLINT
  Json(int64_t i) : v_(i) {}                     // NOLINT
  Json(uint64_t i) : v_(static_cast<int64_t>(i)) {}  // NOLINT
  Json(const char* s) : v_(std::string(s)) {}    // NOLINT
  Json(std::string s) : v_(std::move(s)) {}      // NOLINT
  Json(Array a) : v_(std::move(a)) {}            // NOLINT
  Json(Object o) : v_(std::move(o)) {}           // NOLINT

  static Json array() { return Json(Array{}); }
  static Json object() { return Json(Object{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool(bool fallback = false) const {
    return is_bool() ? std::get<bool>(v_) : fallback;
  }
  int64_t as_int(int64_t fallback = 0) const {
    if (is_int()) return std::get<int64_t>(v_);
    if (is_double()) return static_cast<int64_t>(std::get<double>(v_));
    return fallback;
  }
  double as_double(double fallback = 0) const {
    if (is_double()) return std::get<double>(v_);
    if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
    return fallback;
  }
  const std::string& as_string() const {
    static const std::string kEmpty;
    return is_string() ? std::get<std::string>(v_) : kEmpty;
  }

  const Array& as_array() const {
    static const Array kEmpty;
    return is_array() ? std::get<Array>(v_) : kEmpty;
  }
  Array& mutable_array() { return std::get<Array>(v_); }

  const Object& as_object() const {
    static const Object kEmpty;
    return is_object() ? std::get<Object>(v_) : kEmpty;
  }
  Object& mutable_object() { return std::get<Object>(v_); }

  // Object access; returns a shared null Json for missing keys / non-objects.
  const Json& operator[](std::string_view key) const;
  // Mutating object access; converts null to object on first use.
  Json& operator[](std::string_view key);
  bool contains(std::string_view key) const;

  void push_back(Json v);
  size_t size() const;

  std::string dump(int indent = 0) const;

  static Result<Json> parse(std::string_view text);

  bool operator==(const Json& other) const { return v_ == other.v_; }

 private:
  void dump_to(std::string* out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      v_;
};

}  // namespace gremlin
