#include "common/arena.h"

#include <algorithm>

namespace gremlin {

void* Arena::allocate_slow(size_t bytes, size_t align) {
  // Advance through retained blocks first; only hit the heap when every
  // retained block is exhausted (warm worlds stop getting here after the
  // first experiment sizes the arena).
  while (cur_block_ + 1 < blocks_.size()) {
    ++cur_block_;
    cur_ = blocks_[cur_block_].data.get();
    end_ = cur_ + blocks_[cur_block_].size;
    char* aligned = align_up(cur_, align);
    if (aligned <= end_ && static_cast<size_t>(end_ - aligned) >= bytes) {
      cur_ = aligned + bytes;
      allocated_ += bytes;
      return aligned;
    }
  }

  // Oversized requests get their own block; alignment slack covers the case
  // where the block start is not already sufficiently aligned.
  const size_t want = std::max(block_bytes_, bytes + align);
  Block block;
  block.data = std::make_unique<char[]>(want);
  block.size = want;
  blocks_.push_back(std::move(block));
  cur_block_ = blocks_.size() - 1;
  cur_ = blocks_[cur_block_].data.get();
  end_ = cur_ + blocks_[cur_block_].size;

  char* aligned = align_up(cur_, align);
  cur_ = aligned + bytes;
  allocated_ += bytes;
  return aligned;
}

}  // namespace gremlin
