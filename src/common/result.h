// Result<T>: value-or-error return type used at module boundaries.
//
// The library avoids exceptions on hot paths (rule evaluation, simulation
// stepping); fallible boundary operations (parsing, network I/O, recipe
// translation) return Result<T> instead.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace gremlin {

// Error: a simple error code + human-readable message.
struct Error {
  enum class Code {
    kInvalidArgument,
    kNotFound,
    kParse,
    kIo,
    kUnavailable,
    kFailedPrecondition,
    kInternal,
  };

  Code code = Code::kInternal;
  std::string message;

  static Error invalid_argument(std::string msg) {
    return {Code::kInvalidArgument, std::move(msg)};
  }
  static Error not_found(std::string msg) {
    return {Code::kNotFound, std::move(msg)};
  }
  static Error parse(std::string msg) { return {Code::kParse, std::move(msg)}; }
  static Error io(std::string msg) { return {Code::kIo, std::move(msg)}; }
  static Error unavailable(std::string msg) {
    return {Code::kUnavailable, std::move(msg)};
  }
  static Error failed_precondition(std::string msg) {
    return {Code::kFailedPrecondition, std::move(msg)};
  }
  static Error internal(std::string msg) {
    return {Code::kInternal, std::move(msg)};
  }
};

inline const char* to_string(Error::Code code) {
  switch (code) {
    case Error::Code::kInvalidArgument: return "invalid_argument";
    case Error::Code::kNotFound: return "not_found";
    case Error::Code::kParse: return "parse_error";
    case Error::Code::kIo: return "io_error";
    case Error::Code::kUnavailable: return "unavailable";
    case Error::Code::kFailedPrecondition: return "failed_precondition";
    case Error::Code::kInternal: return "internal";
  }
  return "unknown";
}

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error err) : v_(std::move(err)) {}  // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(v_);
  }

  // Returns the contained value or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> v_;
};

// Result<void> analogue.
class [[nodiscard]] VoidResult {
 public:
  VoidResult() = default;
  VoidResult(Error err) : err_(std::move(err)), has_error_(true) {}  // NOLINT

  static VoidResult success() { return VoidResult(); }

  bool ok() const { return !has_error_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(has_error_);
    return err_;
  }

 private:
  Error err_;
  bool has_error_ = false;
};

}  // namespace gremlin
