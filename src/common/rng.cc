#include "common/rng.h"

#include <cmath>

namespace gremlin {

uint64_t hash64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t counter_u64(uint64_t key, uint64_t counter) {
  // SplitMix64 output function applied at position `counter` of the stream
  // whose initial state is `key` — identical to Rng(key) after `counter`
  // prior draws, but computed without consuming shared state.
  uint64_t z = key + (counter + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double counter_double(uint64_t key, uint64_t counter) {
  return static_cast<double>(counter_u64(key, counter) >> 11) * 0x1.0p-53;
}

Rng Rng::fork(std::string_view label) const {
  Rng copy = *this;
  const uint64_t base = copy.next_u64();
  return Rng(base ^ hash64(label));
}

uint64_t Rng::next_u64() {
  // SplitMix64 (Steele, Lea, Flood 2014).
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::next_below(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

int64_t Rng::uniform(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(next_below(span));
}

double Rng::exponential(double mean) {
  // Inverse-CDF; guard against log(0).
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace gremlin
