// Name interning: 32-bit symbols for the low-cardinality names that flow
// through the simulate-and-check hot loop.
//
// Every message observation used to copy four-plus owning std::strings
// (src, dst, instance, method, uri, rule id). Those names come from a tiny,
// test-run-bounded vocabulary — service names, instance ids, HTTP methods,
// rule ids — so the hot path now carries 4-byte Symbols and stringifies
// lazily at JSON/report boundaries. Request IDs are deliberately NOT
// interned: they are high-cardinality (one per flow) and would grow the
// table without bound.
//
// Concurrency: symbol -> string lookups are lock-free everywhere (each slot
// is an atomic pointer to a never-freed string, published with release
// semantics). Interning has two tiers:
//
//   - Unbound threads intern through the global mutex, exactly as before:
//     the same text yields the same id process-wide.
//   - Campaign workers bind a ShardSymbolTable (ScopedShardSymbols). The
//     shard interns from a private cache plus a lock-free snapshot of the
//     global index, assigning fresh ids from a block reserved with one
//     fetch_add — no lock, no cross-worker contention. New (text, id) pairs
//     are merged into the global index only at result boundaries.
//
// A shard may assign a *different* id to a text another thread also
// interned (an alias). That is safe by construction: ids never leave the
// worker that minted them — results carry strings, and every alias
// stringifies identically because its slot is published at intern time.
// Within one worker the shard cache maps each text to exactly one id, so
// Symbol equality stays sound where it is actually evaluated.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gremlin {

class SymbolTable;
class ShardSymbolTable;

namespace intern_detail {
// The shard bound to this thread, if any (see ScopedShardSymbols).
inline thread_local ShardSymbolTable* tls_shard = nullptr;
}  // namespace intern_detail

// A handle to an interned string. Default-constructed == the empty string.
// Comparisons against string-likes compare the interned text; comparisons
// between Symbols compare ids (valid because interning deduplicates within
// the thread's interning domain — see file comment on shard aliases).
class Symbol {
 public:
  constexpr Symbol() = default;

  // Interns on construction (implicit by design: the refactor's string ->
  // Symbol call sites read naturally, and the vocabulary is bounded).
  Symbol(std::string_view text);    // NOLINT(google-explicit-constructor)
  Symbol(const std::string& text)   // NOLINT(google-explicit-constructor)
      : Symbol(std::string_view(text)) {}
  Symbol(const char* text)          // NOLINT(google-explicit-constructor)
      : Symbol(std::string_view(text)) {}

  uint32_t id() const { return id_; }
  bool empty() const { return id_ == 0; }

  // The interned text; valid for the process lifetime.
  std::string_view view() const;
  std::string str() const { return std::string(view()); }

  friend bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  // Orders by id (cheap, stable within a process run) — fine for map keys;
  // use view() when lexicographic order matters.
  friend bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

 private:
  friend class SymbolTable;
  friend class ShardSymbolTable;
  constexpr explicit Symbol(uint32_t id, int) : id_(id) {}

  uint32_t id_ = 0;
};

// Text comparisons against any string-like. Templates (not Symbol-converting
// overloads) so that `symbol == "literal"` resolves without ambiguity
// between the Symbol(const char*) and string_view conversions.
template <typename S,
          typename = std::enable_if_t<
              std::is_convertible_v<const S&, std::string_view> &&
              !std::is_same_v<std::decay_t<S>, Symbol>>>
inline bool operator==(Symbol a, const S& b) {
  return a.view() == std::string_view(b);
}
template <typename S,
          typename = std::enable_if_t<
              std::is_convertible_v<const S&, std::string_view> &&
              !std::is_same_v<std::decay_t<S>, Symbol>>>
inline bool operator==(const S& a, Symbol b) {
  return std::string_view(a) == b.view();
}
template <typename S,
          typename = std::enable_if_t<
              std::is_convertible_v<const S&, std::string_view> &&
              !std::is_same_v<std::decay_t<S>, Symbol>>>
inline bool operator!=(Symbol a, const S& b) {
  return !(a == b);
}
template <typename S,
          typename = std::enable_if_t<
              std::is_convertible_v<const S&, std::string_view> &&
              !std::is_same_v<std::decay_t<S>, Symbol>>>
inline bool operator!=(const S& a, Symbol b) {
  return !(a == b);
}

inline std::ostream& operator<<(std::ostream& os, Symbol s) {
  return os << s.view();
}

inline std::string operator+(const std::string& a, Symbol b) {
  return a + std::string(b.view());
}
inline std::string operator+(Symbol a, const std::string& b) {
  return std::string(a.view()) + b;
}
inline std::string operator+(Symbol a, const char* b) {
  return std::string(a.view()) + b;
}
inline std::string operator+(const char* a, Symbol b) {
  return a + std::string(b.view());
}

// The process-wide interning table. Append-only: symbols are never freed,
// which is what makes lock-free reads and process-lifetime string_views
// possible. Cardinality is bounded by design (see file comment).
class SymbolTable {
 public:
  static SymbolTable& global();

  // Returns the existing symbol for `text`, or assigns the next id.
  // Mutex-guarded; shard-bound threads go through ShardSymbolTable instead.
  Symbol intern(std::string_view text);

  // Lookup without inserting (queries probe for names that may never have
  // been logged; they must not pollute the table).
  std::optional<Symbol> find(std::string_view text) const;

  // Lock-free symbol -> text. Out-of-range and unpublished ids resolve to "".
  std::string_view view(uint32_t id) const;

  // Number of published symbols (including the implicit empty string and
  // any shard aliases). Stable across find().
  size_t size() const { return published_.load(std::memory_order_acquire); }

 private:
  friend class ShardSymbolTable;

  // 1024 entries per chunk; 4096 chunk slots -> up to 4M distinct names.
  static constexpr size_t kChunkBits = 10;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kMaxChunks = 4096;
  static constexpr uint32_t kCapacity =
      static_cast<uint32_t>(kChunkSize * kMaxChunks);

  struct Chunk {
    std::array<std::atomic<const std::string*>, kChunkSize> entries{};
  };

  // Lock-free snapshot of the text -> id index, rebuilt only when the index
  // has grown since the last snapshot (the vocabulary is bounded, so
  // rebuilds stop once a campaign warms up). Shards probe it without the
  // mutex; a stale snapshot merely costs an alias, never a wrong answer.
  using Index = std::unordered_map<std::string_view, uint32_t>;

  SymbolTable();

  Symbol intern_locked(std::string_view text);

  // Reserves a contiguous id block for a shard; returns the first id, or
  // nullopt when the table is full (shards then fall back to the mutex).
  std::optional<uint32_t> reserve_block(uint32_t count);

  // Publishes `text` into slot `id` (creating the chunk if needed) and
  // returns the never-freed backing string. Safe to call concurrently for
  // distinct ids; each id is published exactly once by its owner.
  const std::string* publish(uint32_t id, std::string_view text);

  // Inserts shard-minted (text, id) pairs into the index (first writer
  // wins; losers stay as aliases) and refreshes the snapshot if needed.
  void merge(std::vector<std::pair<const std::string*, uint32_t>>& pending);

  const Index* snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }
  void refresh_snapshot_locked();

  mutable std::mutex mu_;  // guards index_ and snapshot refresh
  Index index_;
  std::atomic<const Index*> snapshot_{nullptr};
  std::vector<std::unique_ptr<const Index>> retired_;  // kept for readers
  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  std::atomic<uint32_t> next_id_{0};     // high-water of reserved ids
  std::atomic<uint32_t> published_{0};   // slots actually published
};

// A worker-private interning front end. intern() touches no lock on every
// path: private cache hit, lock-free global-snapshot hit, or a fresh id
// from a block reserved with a single fetch_add. merge() (called at result
// boundaries) makes the worker's new names visible to global find().
//
// Not thread-safe; bind to exactly one thread via ScopedShardSymbols.
class ShardSymbolTable {
 public:
  explicit ShardSymbolTable(SymbolTable* global = &SymbolTable::global());
  ~ShardSymbolTable();

  ShardSymbolTable(const ShardSymbolTable&) = delete;
  ShardSymbolTable& operator=(const ShardSymbolTable&) = delete;

  Symbol intern(std::string_view text);

  // Lookup without inserting, resolving to the id *this shard's* records
  // carry (shard cache first, then the global snapshot/index).
  std::optional<Symbol> find(std::string_view text) const;

  // Publishes pending (text, id) pairs into the global index. Call at
  // result boundaries (end of an experiment batch); cheap when empty.
  void merge();

  size_t pending_count() const { return pending_.size(); }
  size_t cache_size() const { return cache_.size(); }

 private:
  static constexpr uint32_t kBlockSize = 256;

  SymbolTable* global_;
  // Keys view into never-freed slot strings, so the cache owns nothing.
  std::unordered_map<std::string_view, uint32_t> cache_;
  std::vector<std::pair<const std::string*, uint32_t>> pending_;
  uint32_t block_cur_ = 0;
  uint32_t block_end_ = 0;
};

// Binds a shard to the current thread for its scope: Symbol construction
// and find_symbol() route through it instead of the global mutex.
class ScopedShardSymbols {
 public:
  explicit ScopedShardSymbols(ShardSymbolTable* shard)
      : prev_(intern_detail::tls_shard) {
    intern_detail::tls_shard = shard;
  }
  ~ScopedShardSymbols() { intern_detail::tls_shard = prev_; }

  ScopedShardSymbols(const ScopedShardSymbols&) = delete;
  ScopedShardSymbols& operator=(const ScopedShardSymbols&) = delete;

 private:
  ShardSymbolTable* prev_;
};

inline ShardSymbolTable* current_shard_symbols() {
  return intern_detail::tls_shard;
}

// Shard-aware find: resolves `text` to the Symbol this thread's records
// were written with. Query planners must use this instead of
// SymbolTable::global().find() so lookups on a worker thread see the
// worker's own (possibly aliased) ids.
std::optional<Symbol> find_symbol(std::string_view text);

inline Symbol::Symbol(std::string_view text) {
  if (ShardSymbolTable* shard = intern_detail::tls_shard) {
    id_ = shard->intern(text).id_;
  } else {
    id_ = SymbolTable::global().intern(text).id_;
  }
}

inline std::string_view Symbol::view() const {
  return SymbolTable::global().view(id_);
}

}  // namespace gremlin
