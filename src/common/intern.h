// Name interning: 32-bit symbols for the low-cardinality names that flow
// through the simulate-and-check hot loop.
//
// Every message observation used to copy four-plus owning std::strings
// (src, dst, instance, method, uri, rule id). Those names come from a tiny,
// test-run-bounded vocabulary — service names, instance ids, HTTP methods,
// rule ids — so the hot path now carries 4-byte Symbols and stringifies
// lazily at JSON/report boundaries. Request IDs are deliberately NOT
// interned: they are high-cardinality (one per flow) and would grow the
// table without bound.
//
// Concurrency: symbol -> string lookups are lock-free (append-only chunked
// storage published through an acquire/release counter), so parallel
// campaign workers resolve names without contention. Interning new names
// takes a mutex, but callers cache Symbols for the run's duration, so the
// writer path is cold.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>

namespace gremlin {

class SymbolTable;

// A handle to an interned string. Default-constructed == the empty string.
// Comparisons against string-likes compare the interned text; comparisons
// between Symbols compare ids (valid because interning deduplicates).
class Symbol {
 public:
  constexpr Symbol() = default;

  // Interns on construction (implicit by design: the refactor's string ->
  // Symbol call sites read naturally, and the vocabulary is bounded).
  Symbol(std::string_view text);    // NOLINT(google-explicit-constructor)
  Symbol(const std::string& text)   // NOLINT(google-explicit-constructor)
      : Symbol(std::string_view(text)) {}
  Symbol(const char* text)          // NOLINT(google-explicit-constructor)
      : Symbol(std::string_view(text)) {}

  uint32_t id() const { return id_; }
  bool empty() const { return id_ == 0; }

  // The interned text; valid for the process lifetime.
  std::string_view view() const;
  std::string str() const { return std::string(view()); }

  friend bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  // Orders by id (cheap, stable within a process run) — fine for map keys;
  // use view() when lexicographic order matters.
  friend bool operator<(Symbol a, Symbol b) { return a.id_ < b.id_; }

 private:
  friend class SymbolTable;
  constexpr explicit Symbol(uint32_t id, int) : id_(id) {}

  uint32_t id_ = 0;
};

// Text comparisons against any string-like. Templates (not Symbol-converting
// overloads) so that `symbol == "literal"` resolves without ambiguity
// between the Symbol(const char*) and string_view conversions.
template <typename S,
          typename = std::enable_if_t<
              std::is_convertible_v<const S&, std::string_view> &&
              !std::is_same_v<std::decay_t<S>, Symbol>>>
inline bool operator==(Symbol a, const S& b) {
  return a.view() == std::string_view(b);
}
template <typename S,
          typename = std::enable_if_t<
              std::is_convertible_v<const S&, std::string_view> &&
              !std::is_same_v<std::decay_t<S>, Symbol>>>
inline bool operator==(const S& a, Symbol b) {
  return std::string_view(a) == b.view();
}
template <typename S,
          typename = std::enable_if_t<
              std::is_convertible_v<const S&, std::string_view> &&
              !std::is_same_v<std::decay_t<S>, Symbol>>>
inline bool operator!=(Symbol a, const S& b) {
  return !(a == b);
}
template <typename S,
          typename = std::enable_if_t<
              std::is_convertible_v<const S&, std::string_view> &&
              !std::is_same_v<std::decay_t<S>, Symbol>>>
inline bool operator!=(const S& a, Symbol b) {
  return !(a == b);
}

inline std::ostream& operator<<(std::ostream& os, Symbol s) {
  return os << s.view();
}

inline std::string operator+(const std::string& a, Symbol b) {
  return a + std::string(b.view());
}
inline std::string operator+(Symbol a, const std::string& b) {
  return std::string(a.view()) + b;
}
inline std::string operator+(Symbol a, const char* b) {
  return std::string(a.view()) + b;
}
inline std::string operator+(const char* a, Symbol b) {
  return a + std::string(b.view());
}

// The process-wide interning table. Append-only: symbols are never freed,
// which is what makes lock-free reads and process-lifetime string_views
// possible. Cardinality is bounded by design (see file comment).
class SymbolTable {
 public:
  static SymbolTable& global();

  // Returns the existing symbol for `text`, or assigns the next id.
  Symbol intern(std::string_view text);

  // Lookup without inserting (queries probe for names that may never have
  // been logged; they must not pollute the table).
  std::optional<Symbol> find(std::string_view text) const;

  // Lock-free symbol -> text. Out-of-range ids resolve to "".
  std::string_view view(uint32_t id) const;

  // Number of distinct symbols (including the implicit empty string).
  size_t size() const { return count_.load(std::memory_order_acquire); }

 private:
  // 1024 entries per chunk; 4096 chunk slots -> up to 4M distinct names.
  static constexpr size_t kChunkBits = 10;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;
  static constexpr size_t kMaxChunks = 4096;

  struct Chunk {
    std::array<std::string, kChunkSize> entries;
  };

  SymbolTable();

  Symbol intern_locked(std::string_view text);

  mutable std::mutex mu_;  // guards index_ and chunk creation
  std::unordered_map<std::string_view, uint32_t> index_;
  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  std::atomic<uint32_t> count_{0};
};

inline Symbol::Symbol(std::string_view text) {
  id_ = SymbolTable::global().intern(text).id_;
}

inline std::string_view Symbol::view() const {
  return SymbolTable::global().view(id_);
}

}  // namespace gremlin
