// Campaign engine tests: the determinism contract (thread count never
// changes results), experiment isolation (same seed + same spec = same
// behaviour whether an experiment runs alone or inside a shared campaign),
// sweep generation, seed replication, and recipe lowering.
#include <gtest/gtest.h>

#include "campaign/app_spec.h"
#include "campaign/experiment.h"
#include "campaign/runner.h"
#include "dsl/lowering.h"
#include "dsl/parser.h"
#include "report/campaign_report.h"

namespace gremlin::campaign {
namespace {

control::LoadOptions small_load() {
  control::LoadOptions load;
  load.count = 30;
  load.gap = msec(5);
  return load;
}

std::vector<Experiment> buggy_tree_sweep(uint64_t seed = 42) {
  const AppSpec app = AppSpec::buggy_tree();
  SweepOptions options;
  options.load = small_load();
  options.seed = seed;
  return generate_sweep(app, app.probe_graph(), options);
}

TEST(SweepTest, EnumeratesEdgesAndServices) {
  const AppSpec app = AppSpec::buggy_tree();
  const topology::AppGraph graph = app.probe_graph();
  // Depth-3 binary tree: 7 services + user, 6 tree edges + user->svc0.
  ASSERT_EQ(graph.edge_count(), 7u);

  const auto experiments = buggy_tree_sweep();
  // Load target resolves to svc0 (the front door "user" calls), which is
  // excluded from faults along with "user" itself:
  //   edge kinds (abort, delay, disconnect): 6 edges not entering svc0/user
  //   service kinds (overload, crash): 6 services (all but svc0 and user)
  EXPECT_EQ(experiments.size(), 3u * 6u + 2u * 6u);
  for (const auto& e : experiments) {
    EXPECT_EQ(e.target, "svc0");
    EXPECT_EQ(e.client, "user");
    ASSERT_EQ(e.checks.size(), 1u);
    EXPECT_EQ(e.checks[0].kind, CheckSpec::Kind::kMaxUserFailures);
    ASSERT_EQ(e.failures.size(), 1u);
    EXPECT_FALSE(e.id.empty());
  }
}

TEST(SweepTest, FindsThePlantedBug) {
  // The buggy tree has exactly one latent bug: svc0 handles a failing svc2
  // with neither timeout nor fallback. The systematic sweep must flag
  // experiments that touch svc2 and pass everything else.
  const auto experiments = buggy_tree_sweep();
  const CampaignRunner runner(RunnerOptions{.threads = 1});
  const CampaignResult result = runner.run(experiments);

  ASSERT_EQ(result.experiments.size(), experiments.size());
  EXPECT_EQ(result.errors(), 0u);
  EXPECT_GT(result.failed(), 0u);
  for (const auto& r : result.experiments) {
    const bool touches_bug = r.id.find("svc2") != std::string::npos;
    if (!touches_bug) {
      EXPECT_TRUE(r.passed()) << r.id << " should pass but failed";
    }
  }
  // The direct hit on the unprotected edge must surface the bug.
  for (const auto& r : result.experiments) {
    if (r.id == "abort(svc0->svc2)" || r.id == "crash(svc2)") {
      EXPECT_FALSE(r.passed()) << r.id << " should expose the missing "
                                  "fallback";
    }
  }
}

TEST(SweepTest, ReplicateSeedsClonesWithNewSeeds) {
  auto base = buggy_tree_sweep();
  base.resize(2);
  const auto replicated = replicate_seeds(base, {1, 2, 3});
  ASSERT_EQ(replicated.size(), 6u);
  EXPECT_EQ(replicated[0].seed, 1u);
  EXPECT_EQ(replicated[2].seed, 3u);
  EXPECT_NE(replicated[0].id.find(" seed=1"), std::string::npos);
  EXPECT_EQ(replicated[0].id.substr(0, base[0].id.size()), base[0].id);
}

TEST(RunnerTest, ThreadCountNeverChangesResults) {
  // The headline determinism contract: a parallel campaign is byte-identical
  // to a sequential one. Fingerprints cover check verdicts, counters, and
  // every per-request latency/status value.
  const auto experiments =
      replicate_seeds(buggy_tree_sweep(), {7, 1234567});
  const CampaignResult sequential =
      CampaignRunner(RunnerOptions{.threads = 1}).run(experiments);
  const CampaignResult parallel =
      CampaignRunner(RunnerOptions{.threads = 8}).run(experiments);

  ASSERT_EQ(sequential.experiments.size(), parallel.experiments.size());
  EXPECT_EQ(sequential.fingerprint(), parallel.fingerprint());
  EXPECT_EQ(parallel.threads, 8);
}

TEST(RunnerTest, ReportsAreByteIdenticalAcrossOneFourEightThreads) {
  // Regression guard for the determinism contract at the report layer: the
  // same campaign at 1, 4, and 8 workers must produce byte-identical result
  // fingerprints AND byte-identical rendered experiment rows. Only fields
  // that record the execution itself (thread count, wall clock) may differ.
  const auto experiments = replicate_seeds(buggy_tree_sweep(), {3, 99});
  std::vector<std::string> fingerprints;
  std::vector<std::string> rendered_rows;
  for (const int threads : {1, 4, 8}) {
    const CampaignResult result =
        CampaignRunner(RunnerOptions{.threads = threads}).run(experiments);
    fingerprints.push_back(result.fingerprint());
    const report::CampaignReport rep =
        report::build_campaign_report(result, "determinism");
    rendered_rows.push_back(rep.to_json()["experiments"].dump(2));
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
  EXPECT_EQ(rendered_rows[0], rendered_rows[1]);
  EXPECT_EQ(rendered_rows[0], rendered_rows[2]);
}

TEST(RunnerTest, ExperimentsAreIsolated) {
  // Same seed, different failure spec: each experiment gets its own private
  // simulation + RNG, so running an experiment inside a big shared campaign
  // gives exactly the result of running it alone.
  const auto experiments = buggy_tree_sweep();
  const CampaignResult batch =
      CampaignRunner(RunnerOptions{.threads = 4}).run(experiments);
  for (size_t i = 0; i < experiments.size(); i += 7) {
    const ExperimentResult alone = CampaignRunner::run_one(experiments[i]);
    EXPECT_EQ(alone.fingerprint(), batch.experiments[i].fingerprint())
        << experiments[i].id;
  }
}

TEST(RunnerTest, ResultsKeepInputOrder) {
  const auto experiments = buggy_tree_sweep();
  const CampaignResult result =
      CampaignRunner(RunnerOptions{.threads = 8}).run(experiments);
  ASSERT_EQ(result.experiments.size(), experiments.size());
  for (size_t i = 0; i < experiments.size(); ++i) {
    EXPECT_EQ(result.experiments[i].id, experiments[i].id);
  }
}

TEST(RunnerTest, OnResultHookSeesEveryExperiment) {
  const auto experiments = buggy_tree_sweep();
  std::vector<std::string> seen;
  RunnerOptions options;
  options.threads = 4;
  options.on_result = [&seen](const ExperimentResult& r) {
    seen.push_back(r.id);
  };
  CampaignRunner(options).run(experiments);
  EXPECT_EQ(seen.size(), experiments.size());
}

TEST(RunnerTest, DropLatenciesShrinksFingerprintOnly) {
  const auto experiments = buggy_tree_sweep();
  const ExperimentResult full = CampaignRunner::run_one(experiments[0], true);
  const ExperimentResult lean =
      CampaignRunner::run_one(experiments[0], false);
  EXPECT_EQ(full.requests, lean.requests);
  EXPECT_EQ(full.failures, lean.failures);
  EXPECT_FALSE(full.latencies.empty());
  EXPECT_TRUE(lean.latencies.empty());
}

TEST(RunnerTest, CustomHookRunsImperativeScenarios) {
  Experiment e;
  e.id = "custom";
  e.app = AppSpec::quickstart(3, msec(50));
  e.custom = [](control::TestSession* session) {
    session->apply(control::FailureSpec::abort_edge("serviceA", "serviceB"));
    const auto load = session->run_load("user", "serviceA", 40);
    (void)session->collect();
    std::vector<control::CheckResult> checks;
    checks.push_back(
        session->checker().has_bounded_retries("serviceA", "serviceB", 5));
    control::CheckResult saw_load;
    saw_load.name = "SawLoad";
    saw_load.passed = load.total() == 40;
    checks.push_back(saw_load);
    return checks;
  };
  const ExperimentResult result = CampaignRunner::run_one(e);
  EXPECT_TRUE(result.ok);
  ASSERT_EQ(result.checks.size(), 2u);
  EXPECT_TRUE(result.checks[1].passed);
}

TEST(RunnerTest, BadFailureSpecReportsErrorNotCrash) {
  Experiment e;
  e.id = "bad";
  e.app = AppSpec::quickstart(1, msec(50));
  e.failures.push_back(
      control::FailureSpec::abort_edge("nosuch", "neither"));
  e.load = small_load();
  const ExperimentResult result = CampaignRunner::run_one(e);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
  EXPECT_FALSE(result.passed());
}

TEST(ReportTest, CampaignReportAggregates) {
  const auto experiments = buggy_tree_sweep();
  const CampaignResult result =
      CampaignRunner(RunnerOptions{.threads = 2}).run(experiments);
  const report::CampaignReport rep =
      report::build_campaign_report(result, "buggy-tree sweep");
  EXPECT_EQ(rep.total, experiments.size());
  EXPECT_EQ(rep.passed + rep.failed + rep.errors, rep.total);
  EXPECT_GT(rep.failed, 0u);
  EXPECT_FALSE(rep.all_passed());

  const std::string md = rep.to_markdown();
  EXPECT_NE(md.find("Failing experiments"), std::string::npos);
  const Json j = rep.to_json();
  EXPECT_TRUE(j.is_object());
}

TEST(LoweringTest, RecipeScenariosBecomeExperiments) {
  const char* source = R"(
graph {
  user -> serviceA
  serviceA -> serviceB
}

scenario "b aborts" {
  abort(serviceA, serviceB, error=503)
  load(user, serviceA, count=50)
  has_bounded_retries(serviceA, serviceB, max_tries=5)
  max_user_failures(0)
}
)";
  auto file = dsl::parse(source);
  ASSERT_TRUE(file.ok()) << file.error().message;
  auto lowered = dsl::lower_recipe(
      file.value(), AppSpec::from_graph(file.value().graph), 7);
  ASSERT_TRUE(lowered.ok()) << lowered.error().message;
  ASSERT_EQ(lowered.value().size(), 1u);

  const Experiment& e = lowered.value()[0];
  EXPECT_EQ(e.id, "b aborts");
  EXPECT_EQ(e.seed, 7u);
  ASSERT_EQ(e.failures.size(), 1u);
  EXPECT_EQ(e.load.count, 50u);
  ASSERT_EQ(e.checks.size(), 2u);

  const ExperimentResult result = CampaignRunner::run_one(e);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.requests, 50u);
}

TEST(LoweringTest, ImperativeScenariosAreRejected) {
  const char* preamble = R"(
graph { user -> serviceA }
)";
  for (const char* body : {
           "scenario \"req\" { load(user, serviceA) require "
           "max_user_failures(0) }",
           "scenario \"late\" { load(user, serviceA) abort(user, serviceA) }",
           "scenario \"twice\" { load(user, serviceA) load(user, serviceA) }",
           "scenario \"imp\" { clear }",
       }) {
    auto file = dsl::parse(std::string(preamble) + body);
    ASSERT_TRUE(file.ok()) << file.error().message;
    auto lowered = dsl::lower_recipe(
        file.value(), AppSpec::from_graph(file.value().graph), 1);
    EXPECT_FALSE(lowered.ok()) << body;
    EXPECT_NE(lowered.error().message.find("gremlin run"),
              std::string::npos);
  }
}

TEST(AppSpecTest, FromGraphMatchesInterpreterAutocreate) {
  topology::AppGraph graph;
  graph.add_edge("user", "a");
  graph.add_edge("a", "b");
  const AppSpec spec = AppSpec::from_graph(graph);

  sim::Simulation sim;
  const topology::AppGraph built = spec.instantiate(&sim);
  EXPECT_EQ(built.edge_count(), 2u);
  EXPECT_NE(sim.find_service("user"), nullptr);
  EXPECT_NE(sim.find_service("a"), nullptr);
  EXPECT_NE(sim.find_service("b"), nullptr);
}

}  // namespace
}  // namespace gremlin::campaign
