// Tests for the discrete-event simulator: event ordering, request/response
// timing composition, sidecar fault injection, resiliency-policy execution
// (timeouts, retries, breakers, bulkheads, shared pools), and observation
// logging.
#include <gtest/gtest.h>

#include "faults/rule.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"

namespace gremlin::sim {
namespace {

using faults::FaultRule;
using logstore::FaultKind;
using logstore::MessageKind;

// ------------------------------------------------------------ event queue

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(msec(30), [&] { order.push_back(3); });
  q.schedule_at(msec(10), [&] { order.push_back(1); });
  q.schedule_at(msec(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TieBreakIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(msec(10), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, ClockAdvancesWithEvents) {
  Simulation sim;
  std::vector<int64_t> at;
  sim.schedule(msec(5), [&] { at.push_back(sim.now().count()); });
  sim.schedule(msec(1), [&] {
    at.push_back(sim.now().count());
    sim.schedule(msec(2), [&] { at.push_back(sim.now().count()); });
  });
  sim.run();
  EXPECT_EQ(at, (std::vector<int64_t>{1000, 3000, 5000}));
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.schedule(msec(1), [&] { ++fired; });
  sim.schedule(msec(10), [&] { ++fired; });
  sim.run_until(msec(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), msec(5));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation sim;
  bool fired = false;
  sim.schedule(msec(-5), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), kDurationZero);
}

// ------------------------------------------------------- basic request flow
TEST(SimRequestFlowTest, EndToEndLatencyComposesExactly) {
  Simulation sim;
  ServiceConfig b;
  b.name = "b";
  b.processing_time = msec(1);
  sim.add_service(b);
  ServiceConfig a;
  a.name = "a";
  a.processing_time = msec(1);
  a.dependencies = {"b"};
  sim.add_service(a);

  SimResponse got;
  TimePoint done{};
  SimRequest req;
  req.request_id = "test-0";
  sim.inject("user", "a", req, [&](const SimResponse& resp) {
    got = resp;
    done = sim.now();
  });
  sim.run();

  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.body, "ok:a");
  // user→a 0.5ms, a proc 1ms, a→b 0.5ms, b proc 1ms, b→a 0.5ms, a→user
  // 0.5ms = 4ms total.
  EXPECT_EQ(done, msec(4));
}

TEST(SimRequestFlowTest, SidecarsLogRequestsAndResponses) {
  Simulation sim;
  ServiceConfig b;
  b.name = "b";
  sim.add_service(b);
  ServiceConfig a;
  a.name = "a";
  a.dependencies = {"b"};
  sim.add_service(a);

  SimRequest req;
  req.request_id = "test-7";
  sim.inject("user", "a", req, [](const SimResponse&) {});
  sim.run();

  // a's sidecar observed one request and one response on edge a→b.
  auto records = sim.find_service("a")->instance(0).agent()->fetch_records();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].kind, MessageKind::kRequest);
  EXPECT_EQ((*records)[0].src, "a");
  EXPECT_EQ((*records)[0].dst, "b");
  EXPECT_EQ((*records)[0].request_id, "test-7");
  EXPECT_EQ((*records)[1].kind, MessageKind::kResponse);
  EXPECT_EQ((*records)[1].status, 200);
  EXPECT_EQ((*records)[1].fault, FaultKind::kNone);

  // The user edge client's sidecar logged the user→a exchange.
  auto user_records =
      sim.find_service("user")->instance(0).agent()->fetch_records();
  ASSERT_TRUE(user_records.ok());
  EXPECT_EQ(user_records->size(), 2u);
}

TEST(SimRequestFlowTest, UnknownDependencyLooksLikeReset) {
  Simulation sim;
  ServiceConfig a;
  a.name = "a";
  a.dependencies = {"ghost"};
  sim.add_service(a);

  SimResponse got;
  sim.inject("user", "a", SimRequest{.request_id = "test-0"},
             [&](const SimResponse& r) { got = r; });
  sim.run();
  // a saw a reset from ghost, propagated a 500 upstream.
  EXPECT_EQ(got.status, 500);
}

TEST(SimRequestFlowTest, RoundRobinAcrossInstances) {
  Simulation sim;
  ServiceConfig b;
  b.name = "b";
  b.instances = 3;
  sim.add_service(b);

  for (int i = 0; i < 6; ++i) {
    sim.inject("user", "b", SimRequest{.request_id = "test"},
               [](const SimResponse&) {});
  }
  sim.run();
  SimService* svc = sim.find_service("b");
  EXPECT_EQ(svc->instance(0).requests_handled(), 2u);
  EXPECT_EQ(svc->instance(1).requests_handled(), 2u);
  EXPECT_EQ(svc->instance(2).requests_handled(), 2u);
}

// ------------------------------------------------------------ fault rules

struct TwoServiceFixture {
  Simulation sim;
  SimService* a = nullptr;
  SimService* b = nullptr;

  explicit TwoServiceFixture(resilience::CallPolicy a_policy = {}) {
    ServiceConfig b_cfg;
    b_cfg.name = "b";
    b_cfg.processing_time = msec(1);
    b = sim.add_service(b_cfg);
    ServiceConfig a_cfg;
    a_cfg.name = "a";
    a_cfg.processing_time = msec(1);
    a_cfg.dependencies = {"b"};
    a_cfg.default_policy = a_policy;
    a = sim.add_service(a_cfg);
  }

  void install_on_a(const FaultRule& rule) {
    ASSERT_TRUE(a->instance(0).agent()->install_rules({rule}).ok());
  }

  SimResponse call_once(const std::string& id = "test-0") {
    SimResponse got;
    sim.inject("user", "a", SimRequest{.request_id = id},
               [&](const SimResponse& r) { got = r; });
    sim.run();
    return got;
  }

  logstore::RecordList a_records() {
    auto r = a->instance(0).agent()->fetch_records();
    return r.ok() ? r.value() : logstore::RecordList{};
  }
};

TEST(SimFaultTest, AbortRuleSynthesizes503) {
  TwoServiceFixture f;
  f.install_on_a(FaultRule::abort_rule("a", "b", 503, "test-*"));
  const SimResponse resp = f.call_once();
  EXPECT_EQ(resp.status, 500);  // a propagates its dependency failure

  const auto records = f.a_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].fault, FaultKind::kAbort);
  EXPECT_EQ(records[1].kind, MessageKind::kResponse);
  EXPECT_EQ(records[1].status, 503);
  EXPECT_EQ(records[1].fault, FaultKind::kAbort);
  // b never saw the request.
  EXPECT_EQ(f.b->instance(0).requests_handled(), 0u);
}

TEST(SimFaultTest, AbortRuleSparesUnmatchedFlows) {
  TwoServiceFixture f;
  f.install_on_a(FaultRule::abort_rule("a", "b", 503, "test-*"));
  const SimResponse resp = f.call_once("prod-1");
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(f.b->instance(0).requests_handled(), 1u);
}

TEST(SimFaultTest, TcpResetObservedAsConnectionFailure) {
  TwoServiceFixture f;
  f.install_on_a(FaultRule::abort_rule("a", "b", faults::kTcpReset));
  f.call_once();
  const auto records = f.a_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].status, 0);  // reset: no HTTP status observed
}

TEST(SimFaultTest, DelayRuleAddsExactInterval) {
  TwoServiceFixture baseline;
  TimePoint t_base{};
  baseline.sim.inject("user", "a", SimRequest{.request_id = "test-0"},
                      [&](const SimResponse&) { t_base = baseline.sim.now(); });
  baseline.sim.run();

  TwoServiceFixture delayed;
  delayed.install_on_a(FaultRule::delay_rule("a", "b", msec(250)));
  TimePoint t_delayed{};
  delayed.sim.inject("user", "a", SimRequest{.request_id = "test-0"},
                     [&](const SimResponse&) { t_delayed = delayed.sim.now(); });
  delayed.sim.run();

  EXPECT_EQ(t_delayed - t_base, msec(250));

  const auto records = delayed.a_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].fault, FaultKind::kDelay);
  EXPECT_EQ(records[0].injected_delay, msec(250));
  EXPECT_EQ(records[1].injected_delay, msec(250));  // carried to the reply
  EXPECT_EQ(records[1].status, 200);
}

TEST(SimFaultTest, ResponseSideDelayRule) {
  TwoServiceFixture f;
  FaultRule r = FaultRule::delay_rule("a", "b", msec(100));
  r.on = MessageKind::kResponse;
  f.install_on_a(r);
  TimePoint done{};
  f.sim.inject("user", "a", SimRequest{.request_id = "test-0"},
               [&](const SimResponse&) { done = f.sim.now(); });
  f.sim.run();
  EXPECT_EQ(done, msec(4) + msec(100));
}

TEST(SimFaultTest, ModifyRuleRewritesBodySeenByCallee) {
  Simulation sim;
  std::string seen_body;
  ServiceConfig b;
  b.name = "b";
  b.handler = [&seen_body](std::shared_ptr<RequestContext> ctx) {
    seen_body = ctx->request().body;
    ctx->respond(200, "ok");
  };
  sim.add_service(b);
  ServiceConfig a;
  a.name = "a";
  a.dependencies = {"b"};
  SimService* svc_a = sim.add_service(a);
  ASSERT_TRUE(svc_a->instance(0)
                  .agent()
                  ->install_rules({FaultRule::modify_rule("a", "b", "key",
                                                          "badkey")})
                  .ok());

  // Custom entry: send a body through a.
  ServiceConfig entry;
  entry.name = "user";
  sim.add_service(entry);
  SimRequest req;
  req.request_id = "test-0";
  req.body = "key=value";
  sim.inject("user", "a", req, [](const SimResponse&) {});
  // a's default handler forwards a fresh request (no body) to b, so instead
  // call b directly from a's instance to exercise the modify path.
  sim.run();
  // The default handler's sub-request has an empty body; modify leaves it
  // unchanged. Now call with an explicit body from a's instance:
  SimRequest direct;
  direct.request_id = "test-1";
  direct.body = "key=value";
  svc_a->instance(0).call_dependency("b", direct, [](const SimResponse&) {});
  sim.run();
  EXPECT_EQ(seen_body, "badkey=value");
}

// ------------------------------------------------------- policy execution

TEST(SimPolicyTest, TimeoutFiresBeforeSlowResponse) {
  Simulation sim;
  ServiceConfig b;
  b.name = "b";
  b.processing_time = msec(500);
  sim.add_service(b);
  resilience::CallPolicy policy;
  policy.timeout = msec(50);
  ServiceConfig a;
  a.name = "a";
  a.dependencies = {"b"};
  a.default_policy = policy;
  SimService* svc_a = sim.add_service(a);

  SimResponse got;
  TimePoint done{};
  sim.inject("user", "a", SimRequest{.request_id = "test-0"},
             [&](const SimResponse& r) {
               got = r;
               done = sim.now();
             });
  sim.run();
  EXPECT_EQ(got.status, 500);  // a propagated the timeout as failure
  // a's call timed out at 0.5ms(link)+1ms(proc a)+50ms = 51.5ms; plus the
  // return link 0.5ms = 52ms at the user.
  EXPECT_EQ(done, usec(500) + msec(1) + msec(50) + usec(500));
  // The sidecar logged the request, the client's give-up at the timeout
  // (status 0), and the late real response.
  auto records = svc_a->instance(0).agent()->fetch_records();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[1].status, 0);
  EXPECT_EQ((*records)[1].latency, msec(50));  // concluded at the timeout
  EXPECT_EQ((*records)[2].status, 200);
}

TEST(SimPolicyTest, RetriesUntilRuleExhausts) {
  resilience::CallPolicy policy;
  policy.retry.max_retries = 3;
  policy.retry.base_backoff = msec(10);
  TwoServiceFixture f(policy);
  FaultRule rule = FaultRule::abort_rule("a", "b", 503);
  rule.max_matches = 2;  // first two attempts fail, third succeeds
  f.install_on_a(rule);

  const SimResponse resp = f.call_once();
  EXPECT_EQ(resp.status, 200);
  const auto records = f.a_records();
  size_t requests = 0;
  for (const auto& r : records) {
    if (r.kind == MessageKind::kRequest) ++requests;
  }
  EXPECT_EQ(requests, 3u);
}

TEST(SimPolicyTest, RetriesExhaustedReturnsLastFailure) {
  resilience::CallPolicy policy;
  policy.retry.max_retries = 2;
  policy.retry.base_backoff = msec(1);
  TwoServiceFixture f(policy);
  f.install_on_a(FaultRule::abort_rule("a", "b", 503));
  const SimResponse resp = f.call_once();
  EXPECT_EQ(resp.status, 500);
  size_t requests = 0;
  for (const auto& r : f.a_records()) {
    if (r.kind == MessageKind::kRequest) ++requests;
  }
  EXPECT_EQ(requests, 3u);  // 1 initial + 2 retries
}

TEST(SimPolicyTest, FallbackMasksFailure) {
  resilience::CallPolicy policy;
  policy.fallback = resilience::Fallback{200, "cached"};
  TwoServiceFixture f(policy);
  f.install_on_a(FaultRule::abort_rule("a", "b", 503));
  const SimResponse resp = f.call_once();
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "ok:a");  // a served its own success using fallback
}

TEST(SimPolicyTest, CircuitBreakerShortCircuitsAfterThreshold) {
  resilience::CallPolicy policy;
  policy.circuit_breaker = resilience::CircuitBreakerConfig{3, sec(30), 1};
  TwoServiceFixture f(policy);
  f.install_on_a(FaultRule::abort_rule("a", "b", 503));

  for (int i = 0; i < 10; ++i) {
    f.call_once("test-" + std::to_string(i));
  }
  // Only the first 3 calls reach the wire; the rest are short-circuited.
  size_t requests = 0;
  for (const auto& r : f.a_records()) {
    if (r.kind == MessageKind::kRequest) ++requests;
  }
  EXPECT_EQ(requests, 3u);
}

TEST(SimPolicyTest, CircuitBreakerHalfOpensAfterInterval) {
  resilience::CallPolicy policy;
  policy.circuit_breaker = resilience::CircuitBreakerConfig{2, sec(5), 1};
  TwoServiceFixture f(policy);
  FaultRule rule = FaultRule::abort_rule("a", "b", 503);
  rule.max_matches = 2;
  f.install_on_a(rule);

  f.call_once("test-0");
  f.call_once("test-1");  // breaker opens
  f.call_once("test-2");  // short-circuited
  EXPECT_EQ(f.b->instance(0).requests_handled(), 0u);

  // Let the open interval elapse, then probe: the rule is exhausted so the
  // probe succeeds and the breaker closes.
  f.sim.schedule(sec(6), [] {});
  f.sim.run();
  const SimResponse probe = f.call_once("test-3");
  EXPECT_EQ(probe.status, 200);
  EXPECT_EQ(f.b->instance(0).requests_handled(), 1u);
}

TEST(SimPolicyTest, BulkheadRejectsExcessConcurrency) {
  Simulation sim;
  ServiceConfig b;
  b.name = "b";
  b.processing_time = msec(100);  // slow enough to pile up
  sim.add_service(b);
  resilience::CallPolicy policy;
  policy.bulkhead_max_concurrent = 2;
  ServiceConfig a;
  a.name = "a";
  a.dependencies = {"b"};
  a.default_policy = policy;
  sim.add_service(a);

  int ok = 0, failed = 0;
  for (int i = 0; i < 5; ++i) {
    sim.inject("user", "a", SimRequest{.request_id = "test"},
               [&](const SimResponse& r) { r.failed() ? ++failed : ++ok; });
  }
  sim.run();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(failed, 3);
}

TEST(SimPolicyTest, SharedPoolSerializesAllDependencies) {
  // One slow dependency starves the fast one through the shared pool.
  Simulation sim;
  ServiceConfig slow;
  slow.name = "slow";
  slow.processing_time = msec(100);
  sim.add_service(slow);
  ServiceConfig fast;
  fast.name = "fast";
  fast.processing_time = msec(1);
  sim.add_service(fast);

  ServiceConfig a;
  a.name = "a";
  a.shared_client_pool = 1;
  a.handler = [](std::shared_ptr<RequestContext> ctx) {
    auto remaining = std::make_shared<int>(2);
    auto done = [ctx, remaining](const SimResponse&) {
      if (--*remaining == 0) ctx->respond(200, "done");
    };
    ctx->call("slow", done);
    ctx->call("fast", done);
  };
  sim.add_service(a);

  TimePoint fast_reply{};
  // Observe when the fast call's response arrives via a's sidecar log.
  sim.inject("user", "a", SimRequest{.request_id = "test-0"},
             [](const SimResponse&) {});
  sim.run();
  auto records = sim.find_service("a")->instance(0).agent()->fetch_records();
  ASSERT_TRUE(records.ok());
  for (const auto& r : *records) {
    if (r.dst == "fast" && r.kind == MessageKind::kResponse) {
      fast_reply = r.timestamp;
    }
  }
  // The fast call had to wait for the slow one (~102ms) before even
  // starting, so its reply lands after the slow call completed.
  EXPECT_GT(fast_reply, msec(100));
}

TEST(SimPolicyTest, PerDependencyBulkheadIsolatesSlowDependency) {
  // Same topology as above, but with isolated pools: the fast call
  // completes immediately.
  Simulation sim;
  ServiceConfig slow;
  slow.name = "slow";
  slow.processing_time = msec(100);
  sim.add_service(slow);
  ServiceConfig fast;
  fast.name = "fast";
  fast.processing_time = msec(1);
  sim.add_service(fast);

  ServiceConfig a;
  a.name = "a";
  resilience::CallPolicy isolated;
  isolated.bulkhead_max_concurrent = 4;
  a.policies["slow"] = isolated;
  a.policies["fast"] = isolated;
  a.handler = [](std::shared_ptr<RequestContext> ctx) {
    auto remaining = std::make_shared<int>(2);
    auto done = [ctx, remaining](const SimResponse&) {
      if (--*remaining == 0) ctx->respond(200, "done");
    };
    ctx->call("slow", done);
    ctx->call("fast", done);
  };
  sim.add_service(a);

  TimePoint fast_reply{};
  sim.inject("user", "a", SimRequest{.request_id = "test-0"},
             [](const SimResponse&) {});
  sim.run();
  auto records = sim.find_service("a")->instance(0).agent()->fetch_records();
  ASSERT_TRUE(records.ok());
  for (const auto& r : *records) {
    if (r.dst == "fast" && r.kind == MessageKind::kResponse) {
      fast_reply = r.timestamp;
    }
  }
  EXPECT_LT(fast_reply, msec(10));
}

TEST(SimPolicyTest, DeterministicReplay) {
  auto run = [](uint64_t seed) {
    SimulationConfig cfg;
    cfg.seed = seed;
    Simulation sim(cfg);
    ServiceConfig b;
    b.name = "b";
    sim.add_service(b);
    ServiceConfig a;
    a.name = "a";
    a.dependencies = {"b"};
    SimService* svc_a = sim.add_service(a);
    FaultRule rule = FaultRule::abort_rule("a", "b", 503, "*", 0.5);
    (void)svc_a->instance(0).agent()->install_rules({rule});
    std::vector<int> statuses;
    for (int i = 0; i < 50; ++i) {
      sim.inject("user", "a", SimRequest{.request_id = "test"},
                 [&](const SimResponse& r) { statuses.push_back(r.status); });
    }
    sim.run();
    return statuses;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

}  // namespace
}  // namespace gremlin::sim
