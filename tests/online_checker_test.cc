// Online assertion checking tests (control/online.h).
//
// The centerpiece is a differential fuzz: the incremental (streaming) checks
// must produce verdicts — and, on full streams, byte-identical names and
// details — matching the post-hoc AssertionChecker, which stays the oracle.
// The two implementations deliberately share no evaluation code, so
// agreement over randomized record streams is real evidence.
//
// Also covered: IncrementalCombine vs Combine::evaluate, sticky early
// verdicts (an early decision always equals the full-stream verdict),
// bounded log retention, early-exit vs full-run experiment equivalence
// (verdict fingerprints and failure signatures), and event-pool reclamation
// after an early-terminated run.
#include "control/online.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "campaign/app_spec.h"
#include "campaign/experiment.h"
#include "campaign/runner.h"
#include "control/assertions.h"
#include "control/checker.h"
#include "logstore/store.h"
#include "sim/simulation.h"
#include "topology/graph.h"

namespace gremlin {
namespace {

using campaign::AppSpec;
using campaign::CampaignRunner;
using campaign::CheckSpec;
using campaign::ExecOptions;
using campaign::Experiment;
using campaign::ExperimentResult;
using control::CheckResult;
using control::IncrementalCheck;
using control::LoadSummary;
using control::Verdict;
using logstore::FaultKind;
using logstore::LogRecord;
using logstore::MessageKind;
using logstore::RecordList;

// --- random record streams ---------------------------------------------------

// A plausible-but-adversarial observation stream: mixed edges, requests and
// replies (including orphans), failure statuses, connection resets,
// Gremlin-synthesized aborts, injected delays, timestamp ties, and two
// request-ID families so "test-*" globs filter a real subset.
RecordList random_stream(std::mt19937_64& rng) {
  const char* services[] = {"a", "b", "c", "d"};
  std::uniform_int_distribution<int> count_dist(5, 60);
  std::uniform_int_distribution<int64_t> gap_dist(0, 30000);  // us; ties ok
  std::uniform_int_distribution<int> pct(0, 99);
  std::uniform_int_distribution<int> dst_dist(1, 3);
  std::uniform_int_distribution<int> any_dist(0, 3);
  std::uniform_int_distribution<int> id_dist(0, 7);
  std::uniform_int_distribution<int64_t> lat_dist(0, 200000);
  std::uniform_int_distribution<int64_t> delay_dist(0, 50000);

  const int n = count_dist(rng);
  RecordList out;
  out.reserve(static_cast<size_t>(n));
  int64_t ts = 0;
  for (int i = 0; i < n; ++i) {
    ts += gap_dist(rng);
    LogRecord r;
    r.timestamp = TimePoint{usec(ts)};
    if (pct(rng) < 75) {
      r.src = "a";
      r.dst = services[dst_dist(rng)];
    } else {
      r.src = services[any_dist(rng)];
      do {
        r.dst = services[any_dist(rng)];
      } while (r.dst == r.src);
    }
    r.instance = std::string(r.src.view()) + "-0";
    r.request_id = (pct(rng) < 70 ? "test-" : "other-") +
                   std::to_string(id_dist(rng));
    r.kind = pct(rng) < 55 ? MessageKind::kRequest : MessageKind::kResponse;
    r.method = "GET";
    r.uri = "/";
    if (r.kind == MessageKind::kResponse) {
      const int roll = pct(rng);
      r.status = roll < 55 ? 200 : (roll < 70 ? 500 : (roll < 90 ? 503 : 0));
      r.latency = usec(lat_dist(rng));
    }
    const int fault_roll = pct(rng);
    if (fault_roll < 12) {
      r.fault = FaultKind::kAbort;
      r.rule_id = "rule-abort";
    } else if (fault_roll < 24) {
      r.fault = FaultKind::kDelay;
      r.rule_id = "rule-delay";
      r.injected_delay = usec(delay_dist(rng));
    }
    out.push_back(std::move(r));
  }
  return out;
}

topology::AppGraph fuzz_graph() {
  topology::AppGraph graph;
  graph.add_edge("a", "b");
  graph.add_edge("a", "c");
  graph.add_edge("a", "d");
  return graph;
}

// --- the differential fuzz ---------------------------------------------------

TEST(OnlineDifferentialFuzz, MatchesPostHocCheckerOn1000RandomStreams) {
  const topology::AppGraph graph = fuzz_graph();
  std::mt19937_64 rng(0x6e71a2d5u);  // seeded: failures replay exactly

  for (int iter = 0; iter < 1000; ++iter) {
    const RecordList records = random_stream(rng);
    logstore::LogStore store;
    for (const auto& r : records) store.append(r);
    const control::AssertionChecker checker(&store, &graph);

    // Randomized parameters, used identically by oracle and subject.
    std::uniform_int_distribution<int> pct(0, 99);
    const std::string idp = pct(rng) < 50 ? "*" : "test-*";
    const char* to_services[] = {"b", "c", "d"};
    const std::string svc =
        to_services[std::uniform_int_distribution<int>(0, 2)(rng)];
    const Duration bound = usec(
        std::uniform_int_distribution<int64_t>(1000, 150000)(rng));
    const int max_tries = std::uniform_int_distribution<int>(0, 3)(rng);
    const int cb_threshold = std::uniform_int_distribution<int>(1, 3)(rng);
    const Duration tdelta = usec(
        std::uniform_int_distribution<int64_t>(1000, 120000)(rng));
    const int success_threshold =
        std::uniform_int_distribution<int>(1, 2)(rng);
    const size_t win_threshold =
        static_cast<size_t>(std::uniform_int_distribution<int>(1, 3)(rng));
    const size_t win_max =
        static_cast<size_t>(std::uniform_int_distribution<int>(0, 4)(rng));
    const double min_rate =
        std::uniform_real_distribution<double>(0.0, 50.0)(rng);
    const double percentile = std::uniform_int_distribution<int>(0, 1)(rng)
                                  ? 99.0
                                  : 50.0;
    const bool with_rule = pct(rng) < 50;
    const double max_fraction =
        std::uniform_real_distribution<double>(0.0, 0.6)(rng);

    std::vector<std::pair<CheckResult, std::unique_ptr<IncrementalCheck>>>
        panel;
    panel.emplace_back(
        checker.has_timeouts(svc, bound, idp),
        control::make_incremental_timeouts(svc, bound, idp));
    panel.emplace_back(
        checker.has_bounded_retries("a", "b", max_tries, idp),
        control::make_incremental_bounded_retries("a", "b", max_tries, idp));
    panel.emplace_back(
        checker.has_bounded_retries_windowed("a", "b", 503, win_threshold,
                                             tdelta, win_max, idp),
        control::make_incremental_bounded_retries_windowed(
            "a", "b", 503, win_threshold, tdelta, win_max, idp));
    panel.emplace_back(
        checker.has_circuit_breaker("a", "b", cb_threshold, tdelta,
                                    success_threshold, idp),
        control::make_incremental_circuit_breaker(
            "a", "b", cb_threshold, tdelta, success_threshold, idp));
    panel.emplace_back(
        checker.has_bulkhead("a", "b", min_rate, idp),
        control::make_incremental_bulkhead(&graph, "a", "b", min_rate, idp));
    panel.emplace_back(
        checker.has_latency_slo("a", "b", percentile, bound, with_rule, idp),
        control::make_incremental_latency_slo("a", "b", percentile, bound,
                                              with_rule, idp));
    panel.emplace_back(
        checker.error_rate_below("a", "b", max_fraction, idp),
        control::make_incremental_error_rate("a", "b", max_fraction, idp));

    // Feed the exact stream the post-hoc queries visit (the store sorts by
    // (timestamp, arrival); the generator appends in that order already),
    // recording the first verdict each check commits to.
    std::vector<Verdict> early(panel.size(), Verdict::kUndecided);
    for (const auto& r : records) {
      for (size_t i = 0; i < panel.size(); ++i) {
        panel[i].second->offer(r);
        if (early[i] == Verdict::kUndecided) {
          early[i] = panel[i].second->verdict();
        }
      }
    }

    for (size_t i = 0; i < panel.size(); ++i) {
      const CheckResult& oracle = panel[i].first;
      const CheckResult got = panel[i].second->finalize(LoadSummary{});
      ASSERT_EQ(got.passed, oracle.passed)
          << "iter " << iter << " check " << oracle.name
          << "\n  oracle: " << oracle.detail << "\n  online: " << got.detail;
      ASSERT_EQ(got.name, oracle.name) << "iter " << iter;
      ASSERT_EQ(got.detail, oracle.detail)
          << "iter " << iter << " check " << oracle.name;
      // Stickiness: a verdict committed mid-stream must equal the verdict
      // over the complete stream — the early-exit soundness condition.
      if (early[i] != Verdict::kUndecided) {
        ASSERT_EQ(early[i] == Verdict::kPass, oracle.passed)
            << "iter " << iter << " check " << oracle.name
            << " decided early then flipped";
      }
    }
  }
}

TEST(IncrementalCombineFuzz, MatchesCombineEvaluateOn1000RandomChains) {
  std::mt19937_64 rng(0x51c0ffeeu);
  for (int iter = 0; iter < 1000; ++iter) {
    const RecordList records = random_stream(rng);

    const int steps = std::uniform_int_distribution<int>(1, 4)(rng);
    control::Combine oracle;
    control::IncrementalCombine subject;
    for (int s = 0; s < steps; ++s) {
      const int kind = std::uniform_int_distribution<int>(0, 3)(rng);
      const int status =
          (std::uniform_int_distribution<int>(0, 2)(rng) == 0) ? 0 : 503;
      const size_t num =
          static_cast<size_t>(std::uniform_int_distribution<int>(0, 4)(rng));
      const Duration tdelta = usec(
          std::uniform_int_distribution<int64_t>(1000, 120000)(rng));
      const bool with_rule = std::uniform_int_distribution<int>(0, 1)(rng);
      switch (kind) {
        case 0:
          oracle.then(control::Combine::check_status(status, num, with_rule));
          subject.check_status(status, num, with_rule);
          break;
        case 1:
          oracle.then(
              control::Combine::at_most_requests(tdelta, with_rule, num));
          subject.at_most_requests(tdelta, with_rule, num);
          break;
        case 2:
          oracle.then(control::Combine::no_requests_for(tdelta));
          subject.no_requests_for(tdelta);
          break;
        default:
          oracle.then(
              control::Combine::at_least_requests(tdelta, with_rule, num));
          subject.at_least_requests(tdelta, with_rule, num);
          break;
      }
    }

    Verdict early = Verdict::kUndecided;
    for (const auto& r : records) {
      subject.feed(r);
      if (early == Verdict::kUndecided) early = subject.verdict();
    }
    const bool expected = oracle.evaluate(records);
    const bool got = subject.finish();
    ASSERT_EQ(got, expected) << "iter " << iter << " (" << records.size()
                             << " records, " << steps << " steps)";
    if (early != Verdict::kUndecided) {
      ASSERT_EQ(early == Verdict::kPass, expected)
          << "iter " << iter << " decided early then flipped";
    }
  }
}

// --- failure signatures (shrinker / reproducer identity) ---------------------

TEST(FailureSignatureTest, SortsAndDedupsFailedCheckNames) {
  std::vector<CheckResult> results;
  CheckResult r;
  r.name = "HasTimeouts(b)";
  r.passed = false;
  results.push_back(r);
  r.name = "MaxUserFailures(0)";
  results.push_back(r);
  r.name = "HasTimeouts(b)";  // duplicate, dedups
  results.push_back(r);
  r.name = "ZPassed";
  r.passed = true;  // passed checks never contribute
  results.push_back(r);
  // Pinned bytes: sorted, deduplicated, " + "-joined — independent of check
  // order and of how much of a truncated run's log survived.
  EXPECT_EQ(control::failure_signature(results),
            "HasTimeouts(b) + MaxUserFailures(0)");
  std::reverse(results.begin(), results.end());
  EXPECT_EQ(control::failure_signature(results),
            "HasTimeouts(b) + MaxUserFailures(0)");
}

// --- bounded retention -------------------------------------------------------

TEST(RetentionTest, ObserverSeesEveryRecordAndRetentionBoundsTheStore) {
  logstore::LogStore store;
  size_t observed = 0;
  store.set_observer([&observed](const LogRecord&) { ++observed; });
  store.set_retention_limit(100);
  for (int i = 0; i < 1000; ++i) {
    LogRecord r;
    r.timestamp = TimePoint{usec(i * 10)};
    r.request_id = "test-" + std::to_string(i);
    r.src = (i % 2 == 0) ? "a" : "b";
    r.dst = "c";
    r.kind = MessageKind::kRequest;
    store.append(std::move(r));
  }
  // The observer fires for every append, before eviction — no record is
  // dropped unseen.
  EXPECT_EQ(observed, 1000u);
  EXPECT_LE(store.size(), 100u);
  EXPECT_EQ(store.dropped() + store.size(), 1000u);
}

TEST(RetentionTest, EvictionKeepsIndexedQueriesConsistent) {
  logstore::LogStore store;
  store.set_retention_limit(64);
  for (int i = 0; i < 500; ++i) {
    LogRecord r;
    r.timestamp = TimePoint{usec(i * 10)};
    r.request_id = "test-" + std::to_string(i);
    r.src = "a";
    r.dst = (i % 2 == 0) ? "b" : "c";
    r.kind = MessageKind::kRequest;
    store.append(std::move(r));
  }
  // Edge-indexed queries agree with a brute-force scan of what survived.
  const RecordList survivors = store.all();
  size_t to_b = 0;
  for (const auto& r : survivors) {
    if (r.dst == "b") ++to_b;
  }
  EXPECT_EQ(store.get_requests("a", "b").size(), to_b);
  // Evicted flows answer empty instead of stale positions.
  logstore::Query q;
  q.id_pattern = "test-0";
  EXPECT_TRUE(store.query(q).empty());
  // Retained flows are still found by exact ID.
  logstore::Query tail;
  tail.id_pattern = survivors.back().request_id;
  EXPECT_EQ(store.query(tail).size(), 1u);
}

// --- experiment-level early exit ---------------------------------------------

control::LoadOptions small_load() {
  control::LoadOptions load;
  load.count = 30;
  load.gap = msec(5);
  return load;
}

std::vector<Experiment> buggy_tree_sweep() {
  const AppSpec app = AppSpec::buggy_tree();
  campaign::SweepOptions options;
  options.load = small_load();
  return campaign::generate_sweep(app, app.probe_graph(), options);
}

TEST(EarlyExitTest, VerdictsAndSignaturesMatchFullRunsAcrossTheSweep) {
  // The headline equivalence: early-exit ON and OFF agree on every verdict
  // (and therefore every failure signature) for every experiment of the
  // buggy-tree sweep — ON is just faster.
  for (const Experiment& e : buggy_tree_sweep()) {
    ExecOptions on;   // defaults: early_exit = true
    ExecOptions off;
    off.early_exit = false;
    const ExperimentResult fast = CampaignRunner::run_one(e, on);
    const ExperimentResult full = CampaignRunner::run_one(e, off);
    ASSERT_TRUE(fast.ok) << e.id;
    ASSERT_TRUE(full.ok) << e.id;
    EXPECT_FALSE(full.early_terminated);
    EXPECT_EQ(fast.verdict_fingerprint(), full.verdict_fingerprint()) << e.id;
    EXPECT_EQ(control::failure_signature(fast.checks),
              control::failure_signature(full.checks))
        << e.id;
  }
}

std::vector<Experiment> vocabulary_sweep() {
  // One experiment per new fault class: probabilistic, distribution-valued,
  // windowed, and the three infra-level scenarios, all on the same tree so
  // the differential exercises each lowering path.
  const AppSpec app = AppSpec::tree();
  std::vector<Experiment> sweep;
  auto add = [&](std::string id, control::FailureSpec spec) {
    Experiment e;
    e.id = std::move(id);
    e.app = app;
    e.failures.push_back(std::move(spec));
    e.load = small_load();
    e.checks.push_back(CheckSpec::max_user_failures(0));
    sweep.push_back(std::move(e));
  };

  control::FailureSpec prob =
      control::FailureSpec::abort_edge("svc0", "svc1");
  prob.probability = 0.5;
  add("p=0.5 abort(svc0->svc1)", prob);

  control::FailureSpec uniform =
      control::FailureSpec::delay_edge("svc0", "svc2", msec(30));
  uniform.delay_distribution = faults::DelayDistribution::kUniform;
  uniform.delay_min = msec(10);
  uniform.delay_max = msec(60);
  add("uniform-delay(svc0->svc2)", uniform);

  control::FailureSpec empirical =
      control::FailureSpec::delay_edge("svc1", "svc3", msec(30));
  empirical.delay_distribution = faults::DelayDistribution::kEmpirical;
  empirical.delay_values = {msec(5), msec(20), msec(80)};
  add("empirical-delay(svc1->svc3)", empirical);

  control::FailureSpec windowed =
      control::FailureSpec::abort_edge("svc0", "svc1");
  windowed.after = msec(40);
  windowed.window = msec(60);
  add("windowed-abort(svc0->svc1)", windowed);

  add("instance-crash(svc2)",
      control::FailureSpec::instance_crash("svc2", msec(30), msec(50)));
  add("rolling-partition(svc1,svc2)",
      control::FailureSpec::rolling_partition({"svc1", "svc2"}, msec(10),
                                              msec(30), msec(40)));
  add("slow-node(svc1)",
      control::FailureSpec::slow_node("svc1", msec(20)));
  return sweep;
}

TEST(EarlyExitTest, VocabularyFaultsAgreeWithFullRunsToo) {
  // Same equivalence as above, but over the extended fault vocabulary:
  // probabilistic declines, sampled delays, activation windows, and the
  // infra scenarios must not open a gap between early-exit and full runs.
  for (const Experiment& e : vocabulary_sweep()) {
    ExecOptions on;  // defaults: early_exit = true
    ExecOptions off;
    off.early_exit = false;
    const ExperimentResult fast = CampaignRunner::run_one(e, on);
    const ExperimentResult full = CampaignRunner::run_one(e, off);
    ASSERT_TRUE(fast.ok) << e.id;
    ASSERT_TRUE(full.ok) << e.id;
    EXPECT_FALSE(full.early_terminated);
    EXPECT_EQ(fast.verdict_fingerprint(), full.verdict_fingerprint()) << e.id;
    EXPECT_EQ(control::failure_signature(fast.checks),
              control::failure_signature(full.checks))
        << e.id;
  }
}

TEST(EarlyExitTest, PinsTheTruncationIndependentSignature) {
  // Regression pin for control::failure_signature over early-terminated
  // runs: the canonical buggy-tree reproducer yields these exact bytes in
  // both modes, so a truncated log can never rename a failure mode.
  Experiment e;
  e.id = "abort(svc0->svc2)";
  e.app = AppSpec::buggy_tree();
  e.failures.push_back(control::FailureSpec::abort_edge("svc0", "svc2"));
  e.load = small_load();
  e.checks.push_back(CheckSpec::max_user_failures(0));

  ExecOptions off;
  off.early_exit = false;
  const ExperimentResult fast = CampaignRunner::run_one(e, ExecOptions{});
  const ExperimentResult full = CampaignRunner::run_one(e, off);
  ASSERT_FALSE(fast.passed());
  ASSERT_FALSE(full.passed());
  EXPECT_TRUE(fast.early_terminated);
  EXPECT_EQ(control::failure_signature(fast.checks), "MaxUserFailures(0)");
  EXPECT_EQ(control::failure_signature(full.checks), "MaxUserFailures(0)");
}

TEST(EarlyExitTest, FailingRunsProcessFewerEvents) {
  Experiment e;
  e.id = "crash(svc2)";
  e.app = AppSpec::buggy_tree();
  e.failures.push_back(control::FailureSpec::crash("svc2"));
  e.load = small_load();
  e.checks.push_back(CheckSpec::max_user_failures(0));

  sim::SimulationConfig cfg;
  cfg.seed = e.seed;
  sim::Simulation fast_sim(cfg);
  const ExperimentResult fast =
      CampaignRunner::run_in(e, &fast_sim, ExecOptions{});

  sim::Simulation full_sim(cfg);
  ExecOptions off;
  off.early_exit = false;
  const ExperimentResult full = CampaignRunner::run_in(e, &full_sim, off);

  ASSERT_FALSE(full.passed());
  EXPECT_TRUE(fast.early_terminated);
  EXPECT_FALSE(full.early_terminated);
  EXPECT_EQ(fast.verdict_fingerprint(), full.verdict_fingerprint());
  // The whole point: the failing run stops at the first user-visible
  // failure instead of draining the timeline.
  EXPECT_LT(fast_sim.events_processed(), full_sim.events_processed());
}

TEST(EarlyExitTest, RecordCheckPanelAgreesBetweenModes) {
  // A mixed panel forces the streaming path (SimStreamCollector + store
  // observer + retention): verdicts must still agree with the untouched
  // post-hoc flow.
  for (const char* fault : {"svc2", "svc5"}) {
    Experiment e;
    e.id = std::string("crash(") + fault + ")";
    e.app = AppSpec::buggy_tree();
    e.failures.push_back(control::FailureSpec::crash(fault));
    e.load = small_load();
    e.checks.push_back(CheckSpec::has_timeouts("svc0", msec(500)));
    e.checks.push_back(CheckSpec::error_rate_below("user", "svc0", 0.5));
    e.checks.push_back(CheckSpec::max_user_failures(5));

    ExecOptions off;
    off.early_exit = false;
    const ExperimentResult fast = CampaignRunner::run_one(e, ExecOptions{});
    const ExperimentResult full = CampaignRunner::run_one(e, off);
    ASSERT_TRUE(fast.ok) << e.id;
    EXPECT_EQ(fast.verdict_fingerprint(), full.verdict_fingerprint()) << e.id;
  }
}

TEST(EarlyExitTest, OpaqueCheckDisablesEarlyExitButKeepsVerdicts) {
  // FailureContained has no incremental form; attaching it must force the
  // post-hoc path (identical to early_exit=false), never a wrong verdict.
  Experiment e;
  e.id = "crash(svc2) contained";
  e.app = AppSpec::buggy_tree();
  e.failures.push_back(control::FailureSpec::crash("svc2"));
  e.load = small_load();
  e.checks.push_back(CheckSpec::failure_contained("svc2"));
  e.checks.push_back(CheckSpec::max_user_failures(0));

  const ExperimentResult fast = CampaignRunner::run_one(e, ExecOptions{});
  ExecOptions off;
  off.early_exit = false;
  const ExperimentResult full = CampaignRunner::run_one(e, off);
  EXPECT_FALSE(fast.early_terminated);
  EXPECT_EQ(fast.fingerprint(), full.fingerprint());
}

TEST(EarlyExitTest, PoolIsFullyReclaimedAfterEarlyTermination) {
  // Satellite of the kept-alive-sim contract: an early-terminated run
  // cancels its pending events, and every cancelled slot must be back on
  // the event pool's free list (leaked slab nodes would accumulate across
  // reuses).
  Experiment e;
  e.id = "crash(svc2)";
  e.app = AppSpec::buggy_tree();
  e.failures.push_back(control::FailureSpec::crash("svc2"));
  e.load = small_load();
  e.checks.push_back(CheckSpec::max_user_failures(0));

  sim::SimulationConfig cfg;
  cfg.seed = e.seed;
  sim::Simulation sim(cfg);
  const ExperimentResult result =
      CampaignRunner::run_in(e, &sim, ExecOptions{});
  EXPECT_TRUE(result.early_terminated);
  EXPECT_FALSE(sim.has_pending_events());
  EXPECT_FALSE(sim.stop_requested());
  EXPECT_EQ(sim.event_queue().free_list_length(),
            sim.event_queue().pool_capacity());
}

TEST(OnlineCheckerTest, OpaqueSlotBlocksAllDecided) {
  control::OnlineChecker checker;
  checker.add(control::make_incremental_max_user_failures(0, 1));
  EXPECT_TRUE(checker.all_incremental());
  checker.add(nullptr);  // FailureContained-style opaque check
  EXPECT_FALSE(checker.all_incremental());
  checker.on_user_response(false);  // decides the incremental slot (pass)
  EXPECT_FALSE(checker.all_decided());
}

}  // namespace
}  // namespace gremlin
