// Property-based tests: randomized inputs checked against reference
// implementations and invariants. All randomness is seeded (deterministic).
#include <gtest/gtest.h>

#include "common/glob.h"
#include "common/json.h"
#include "common/rng.h"
#include "faults/rule_engine.h"
#include "httpmsg/parser.h"
#include "sim/simulation.h"

namespace gremlin {
namespace {

// ----------------------------------------------------- glob vs reference

// Exponential-time but obviously-correct reference matcher.
bool ref_glob(std::string_view p, std::string_view t) {
  if (p.empty()) return t.empty();
  if (p[0] == '*') {
    for (size_t k = 0; k <= t.size(); ++k) {
      if (ref_glob(p.substr(1), t.substr(k))) return true;
    }
    return false;
  }
  if (t.empty()) return false;
  if (p[0] == '?' || p[0] == t[0]) return ref_glob(p.substr(1), t.substr(1));
  return false;
}

TEST(GlobPropertyTest, AgreesWithReferenceOnRandomInputs) {
  Rng rng(2026);
  const char alphabet[] = "ab*?";
  for (int iter = 0; iter < 3000; ++iter) {
    std::string pattern, text;
    const int plen = static_cast<int>(rng.next_below(8));
    const int tlen = static_cast<int>(rng.next_below(8));
    for (int i = 0; i < plen; ++i) {
      pattern.push_back(alphabet[rng.next_below(4)]);
    }
    for (int i = 0; i < tlen; ++i) {
      text.push_back(alphabet[rng.next_below(2)]);  // letters only
    }
    EXPECT_EQ(glob_match(pattern, text), ref_glob(pattern, text))
        << "pattern='" << pattern << "' text='" << text << "'";
  }
}

TEST(GlobPropertyTest, StarPrefixAndSuffixInvariants) {
  Rng rng(7);
  for (int iter = 0; iter < 500; ++iter) {
    std::string s;
    const int len = static_cast<int>(rng.next_below(12));
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.next_below(3)));
    }
    // "<s>*" matches any extension of s; "*<s>" any string ending in s.
    EXPECT_TRUE(glob_match(s + "*", s + "xyz"));
    EXPECT_TRUE(glob_match("*" + s, "xyz" + s));
    EXPECT_TRUE(glob_match("*" + s + "*", "pre" + s + "post"));
  }
}

TEST(GlobPropertyTest, LiteralFastPathMeansExactMatchOnly) {
  // Indexed stores answer is_literal() patterns with a point lookup instead
  // of a scan; that is only sound if such a pattern matches exactly itself.
  Rng rng(1234);
  const char alphabet[] = "ab-*?[\\";
  for (int iter = 0; iter < 3000; ++iter) {
    std::string pattern;
    const int plen = static_cast<int>(rng.next_below(8));
    for (int i = 0; i < plen; ++i) {
      pattern.push_back(alphabet[rng.next_below(sizeof(alphabet) - 1)]);
    }
    const Glob glob(pattern);
    if (!glob.is_literal()) continue;
    EXPECT_TRUE(glob.matches(pattern)) << "'" << pattern << "'";
    // Any other string must not match: perturb by extension, truncation,
    // and one random flip.
    EXPECT_FALSE(glob.matches(pattern + "x"));
    if (!pattern.empty()) {
      EXPECT_FALSE(glob.matches(pattern.substr(0, pattern.size() - 1)));
      std::string flipped = pattern;
      const size_t pos = rng.next_below(flipped.size());
      flipped[pos] = flipped[pos] == 'z' ? 'y' : 'z';
      EXPECT_FALSE(glob.matches(flipped)) << "'" << pattern << "'";
    }
  }
}

TEST(GlobPropertyTest, LiteralPrefixFastPathEqualsStartsWith) {
  // "test-*"-style patterns take the prefix-range fast path; the reported
  // prefix must make glob_match equivalent to starts_with on any text.
  Rng rng(4321);
  const char alphabet[] = "ab-*?[\\";
  for (int iter = 0; iter < 3000; ++iter) {
    std::string pattern;
    const int plen = static_cast<int>(rng.next_below(8));
    for (int i = 0; i < plen; ++i) {
      pattern.push_back(alphabet[rng.next_below(sizeof(alphabet) - 1)]);
    }
    const Glob glob(pattern);
    const auto prefix = glob.literal_prefix();
    if (!prefix.has_value()) continue;
    std::string text;
    const int tlen = static_cast<int>(rng.next_below(10));
    for (int i = 0; i < tlen; ++i) {
      text.push_back(alphabet[rng.next_below(2)]);  // letters only
    }
    EXPECT_EQ(glob.matches(text),
              std::string_view(text).substr(0, prefix->size()) == *prefix)
        << "pattern='" << pattern << "' text='" << text << "'";
    // The prefix itself and any extension of it always match.
    EXPECT_TRUE(glob.matches(std::string(*prefix)));
    EXPECT_TRUE(glob.matches(std::string(*prefix) + text));
  }
}

TEST(GlobPropertyTest, FastPathShapesAreMutuallyConsistent) {
  // A pattern is never both literal and prefix-shaped, and either fast path
  // must agree with the general matcher on the pattern stripped of its '*'.
  Rng rng(2025);
  const char alphabet[] = "ab*?";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string pattern;
    const int plen = static_cast<int>(rng.next_below(8));
    for (int i = 0; i < plen; ++i) {
      pattern.push_back(alphabet[rng.next_below(4)]);
    }
    const Glob glob(pattern);
    if (glob.is_literal()) EXPECT_FALSE(glob.literal_prefix().has_value());
    if (const auto prefix = glob.literal_prefix()) {
      EXPECT_EQ(pattern, std::string(*prefix) + "*");
    }
  }
}

// --------------------------------------------- rule engine vs reference

TEST(RuleEnginePropertyTest, MatchesReferenceFirstMatchSemantics) {
  Rng rng(99);
  const std::vector<std::string> services = {"a", "b", "c", "*"};
  const std::vector<std::string> patterns = {"*", "test-*", "prod-*",
                                             "test-1"};
  for (int iter = 0; iter < 200; ++iter) {
    // Random deterministic rule set (probability 1, no match caps).
    std::vector<faults::FaultRule> rules;
    const int count = 1 + static_cast<int>(rng.next_below(6));
    for (int i = 0; i < count; ++i) {
      faults::FaultRule r = faults::FaultRule::abort_rule(
          services[rng.next_below(services.size())],
          services[rng.next_below(3)],  // dst: concrete or wildcard via *
          503, patterns[rng.next_below(patterns.size())]);
      r.id = "r" + std::to_string(iter) + "-" + std::to_string(i);
      rules.push_back(std::move(r));
    }
    faults::RuleEngine engine;
    ASSERT_TRUE(engine.add_rules(rules).ok());

    for (const char* id : {"test-1", "test-2", "prod-1", "other"}) {
      for (const char* src : {"a", "b", "c"}) {
        faults::MessageView view;
        view.kind = logstore::MessageKind::kRequest;
        view.src = src;
        view.dst = "b";
        view.request_id = id;
        const auto decision = engine.evaluate(view);

        // Reference: scan rules in order.
        std::string expected_rule;
        for (const auto& r : rules) {
          const bool src_ok = r.source == "*" || r.source == src;
          const bool dst_ok = r.destination == "*" || r.destination == "b";
          const bool id_ok = glob_match(r.pattern, id);
          if (src_ok && dst_ok && id_ok) {
            expected_rule = r.id;
            break;
          }
        }
        EXPECT_EQ(decision.rule_id, expected_rule)
            << "iter=" << iter << " src=" << src << " id=" << id;
      }
    }
  }
}

TEST(RuleEnginePropertyTest, BoundedRuleFiresExactlyMaxMatches) {
  Rng rng(5);
  for (int iter = 0; iter < 50; ++iter) {
    const uint64_t cap = 1 + rng.next_below(20);
    faults::RuleEngine engine;
    faults::FaultRule r = faults::FaultRule::abort_rule("a", "b", 503);
    r.max_matches = cap;
    ASSERT_TRUE(engine.add_rule(r).ok());
    faults::MessageView view;
    view.kind = logstore::MessageKind::kRequest;
    view.src = "a";
    view.dst = "b";
    view.request_id = "x";
    uint64_t fired = 0;
    for (int i = 0; i < 40; ++i) {
      if (!engine.evaluate(view).none()) ++fired;
    }
    EXPECT_EQ(fired, std::min<uint64_t>(cap, 40));
  }
}

// ------------------------------------------------- JSON random round-trip

Json random_json(Rng* rng, int depth) {
  switch (depth <= 0 ? rng->next_below(4) : rng->next_below(6)) {
    case 0: return Json(nullptr);
    case 1: return Json(rng->next_below(2) == 0);
    case 2: return Json(static_cast<int64_t>(rng->uniform(-1000000, 1000000)));
    case 3: {
      std::string s;
      const int len = static_cast<int>(rng->next_below(10));
      for (int i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(32 + rng->next_below(95)));
      }
      return Json(std::move(s));
    }
    case 4: {
      Json arr = Json::array();
      const int len = static_cast<int>(rng->next_below(4));
      for (int i = 0; i < len; ++i) {
        arr.push_back(random_json(rng, depth - 1));
      }
      return arr;
    }
    default: {
      Json obj = Json::object();
      const int len = static_cast<int>(rng->next_below(4));
      for (int i = 0; i < len; ++i) {
        obj["k" + std::to_string(i)] = random_json(rng, depth - 1);
      }
      return obj;
    }
  }
}

TEST(JsonPropertyTest, DumpParseRoundTripOnRandomDocuments) {
  Rng rng(321);
  for (int iter = 0; iter < 500; ++iter) {
    const Json doc = random_json(&rng, 3);
    for (const int indent : {0, 2}) {
      auto reparsed = Json::parse(doc.dump(indent));
      ASSERT_TRUE(reparsed.ok()) << doc.dump();
      EXPECT_EQ(reparsed.value(), doc);
    }
  }
}

// ------------------------------------------------ HTTP parser fuzzing

TEST(ParserFuzzTest, MutatedMessagesNeverCrashOrOverread) {
  Rng rng(777);
  const std::string base =
      "POST /api/search?q=x HTTP/1.1\r\nHost: svc:8080\r\n"
      "X-Gremlin-ID: test-123\r\nContent-Length: 11\r\n\r\nhello world";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mutated = base;
    const int mutations = 1 + static_cast<int>(rng.next_below(4));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.next_below(mutated.size());
      switch (rng.next_below(3)) {
        case 0:  // flip a byte
          mutated[pos] = static_cast<char>(rng.next_below(256));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        default:  // duplicate a byte
          mutated.insert(pos, 1, mutated[pos]);
      }
    }
    httpmsg::Parser parser(httpmsg::Parser::Kind::kRequest);
    // Feed in random-sized chunks; must consume monotonically and never
    // throw / crash.
    size_t offset = 0;
    while (offset < mutated.size()) {
      const size_t chunk = 1 + rng.next_below(17);
      const std::string_view piece =
          std::string_view(mutated).substr(offset, chunk);
      auto consumed = parser.feed(piece);
      if (!consumed.ok()) break;  // malformed: rejected cleanly
      ASSERT_LE(consumed.value(), piece.size());
      if (consumed.value() == 0 && parser.complete()) break;
      if (consumed.value() == 0 &&
          parser.state() == httpmsg::Parser::State::kError) {
        break;
      }
      offset += consumed.value();
      if (parser.complete()) break;
    }
  }
}

TEST(ParserFuzzTest, ChunkingNeverChangesTheResult) {
  Rng rng(31337);
  const std::string wire =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
  httpmsg::Parser whole(httpmsg::Parser::Kind::kResponse);
  ASSERT_TRUE(whole.feed(wire).ok());
  ASSERT_TRUE(whole.complete());
  const std::string expected = whole.response().body;

  for (int iter = 0; iter < 300; ++iter) {
    httpmsg::Parser parser(httpmsg::Parser::Kind::kResponse);
    size_t offset = 0;
    while (offset < wire.size()) {
      const size_t chunk = 1 + rng.next_below(9);
      auto consumed = parser.feed(
          std::string_view(wire).substr(offset, chunk));
      ASSERT_TRUE(consumed.ok());
      offset += consumed.value();
    }
    ASSERT_TRUE(parser.complete());
    EXPECT_EQ(parser.response().body, expected);
  }
}

// ------------------------------------------ simulator latency composition

TEST(SimPropertyTest, ChainLatencyIsAdditive) {
  // For a linear chain of depth N with fixed processing and link times,
  // end-to-end latency must equal sum(processing) + 2*N*link.
  for (const int depth : {1, 2, 4, 8}) {
    sim::SimulationConfig cfg;
    cfg.default_network_latency = usec(500);
    sim::Simulation sim(cfg);
    for (int i = depth - 1; i >= 0; --i) {
      sim::ServiceConfig svc;
      svc.name = "s" + std::to_string(i);
      svc.processing_time = msec(2);
      if (i + 1 < depth) svc.dependencies = {"s" + std::to_string(i + 1)};
      sim.add_service(svc);
    }
    TimePoint done{};
    sim.inject("user", "s0", sim::SimRequest{.request_id = "t"},
               [&](const sim::SimResponse& resp) {
                 EXPECT_EQ(resp.status, 200);
                 done = sim.now();
               });
    sim.run();
    // Edges: user->s0, s0->s1, ..., s(depth-2)->s(depth-1) = depth edges,
    // each crossed twice (request + response) at 500us per crossing.
    const Duration hops = usec(500) * (2 * depth);
    EXPECT_EQ(done, msec(2) * depth + hops) << "depth=" << depth;
  }
}

TEST(SimPropertyTest, InjectedDelayAddsExactlyOnEveryTopology) {
  Rng rng(11);
  for (int iter = 0; iter < 10; ++iter) {
    const int depth = 2 + static_cast<int>(rng.next_below(3));
    const int edge = static_cast<int>(rng.next_below(depth - 1));
    const Duration delay = msec(50 + static_cast<int64_t>(
                                         rng.next_below(500)));

    auto run_once = [&](bool with_fault) {
      sim::Simulation sim;
      for (int i = depth - 1; i >= 0; --i) {
        sim::ServiceConfig svc;
        svc.name = "s" + std::to_string(i);
        svc.processing_time = msec(1);
        if (i + 1 < depth) svc.dependencies = {"s" + std::to_string(i + 1)};
        sim.add_service(svc);
      }
      if (with_fault) {
        faults::FaultRule rule = faults::FaultRule::delay_rule(
            "s" + std::to_string(edge), "s" + std::to_string(edge + 1),
            delay);
        auto* svc = sim.find_service("s" + std::to_string(edge));
        EXPECT_TRUE(svc->instance(0).agent()->install_rules({rule}).ok());
      }
      TimePoint done{};
      sim.inject("user", "s0", sim::SimRequest{.request_id = "t"},
                 [&](const sim::SimResponse&) { done = sim.now(); });
      sim.run();
      return done;
    };
    const TimePoint base = run_once(false);
    const TimePoint faulted = run_once(true);
    EXPECT_EQ(faulted - base, delay)
        << "depth=" << depth << " edge=" << edge;
  }
}

}  // namespace
}  // namespace gremlin
