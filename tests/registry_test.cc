// Tests for the service registry: TTL expiry, the HTTP facade, the client,
// and dynamic endpoint resolution by the real proxy.
#include <gtest/gtest.h>

#include "httpserver/client.h"
#include "proxy/agent.h"
#include "registry/registry.h"

namespace gremlin::registry {
namespace {

TEST(RegistryTest, RegisterLookupDeregister) {
  Registry reg(sec(30));
  const Endpoint ep{"127.0.0.1", 8080};
  reg.register_instance("svc", ep, sec(0));
  auto eps = reg.lookup("svc", sec(1));
  ASSERT_EQ(eps.size(), 1u);
  EXPECT_EQ(eps[0], ep);
  EXPECT_TRUE(reg.deregister("svc", ep));
  EXPECT_FALSE(reg.deregister("svc", ep));
  EXPECT_TRUE(reg.lookup("svc", sec(1)).empty());
}

TEST(RegistryTest, TtlExpiryAndHeartbeat) {
  Registry reg(sec(10));
  const Endpoint ep{"127.0.0.1", 9000};
  reg.register_instance("svc", ep, sec(0));
  EXPECT_EQ(reg.lookup("svc", sec(10)).size(), 1u);   // exactly at TTL: live
  EXPECT_TRUE(reg.lookup("svc", sec(11)).empty());    // past TTL: expired
  // A heartbeat (re-register) revives it.
  reg.register_instance("svc", ep, sec(11));
  EXPECT_EQ(reg.lookup("svc", sec(20)).size(), 1u);
}

TEST(RegistryTest, MultipleInstancesAndServices) {
  Registry reg(kDurationZero);  // no expiry
  reg.register_instance("a", {"127.0.0.1", 1}, sec(0));
  reg.register_instance("a", {"127.0.0.1", 2}, sec(0));
  reg.register_instance("b", {"127.0.0.1", 3}, sec(0));
  EXPECT_EQ(reg.lookup("a", sec(100)).size(), 2u);
  EXPECT_EQ(reg.services(sec(100)),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(reg.size(), 3u);
}

TEST(RegistryTest, RegisterIsIdempotentPerEndpoint) {
  Registry reg(sec(30));
  const Endpoint ep{"127.0.0.1", 1};
  reg.register_instance("a", ep, sec(0));
  reg.register_instance("a", ep, sec(1));
  EXPECT_EQ(reg.lookup("a", sec(2)).size(), 1u);
}

TEST(RegistryTest, PruneDropsExpired) {
  Registry reg(sec(5));
  reg.register_instance("a", {"127.0.0.1", 1}, sec(0));
  reg.register_instance("a", {"127.0.0.1", 2}, sec(8));
  reg.prune(sec(10));
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.lookup("a", sec(10))[0].port, 2);
}

TEST(RegistryHttpTest, ClientServerRoundTrip) {
  Registry reg(minutes(5));
  RegistryServer server(&reg);
  auto port = server.start();
  ASSERT_TRUE(port.ok());

  RegistryClient client("127.0.0.1", *port);
  ASSERT_TRUE(client.register_instance("search", {"127.0.0.1", 4000}).ok());
  ASSERT_TRUE(client.register_instance("search", {"127.0.0.1", 4001}).ok());

  auto eps = client.lookup("search");
  ASSERT_TRUE(eps.ok());
  EXPECT_EQ(eps->size(), 2u);

  auto services = client.services();
  ASSERT_TRUE(services.ok());
  EXPECT_EQ(*services, (std::vector<std::string>{"search"}));

  ASSERT_TRUE(client.deregister("search", {"127.0.0.1", 4000}).ok());
  eps = client.lookup("search");
  ASSERT_TRUE(eps.ok());
  EXPECT_EQ(eps->size(), 1u);
  EXPECT_EQ((*eps)[0].port, 4001);
}

TEST(RegistryHttpTest, RejectsBadRequests) {
  Registry reg;
  RegistryServer server(&reg);
  auto port = server.start();
  ASSERT_TRUE(port.ok());

  httpmsg::Request bad;
  bad.method = "PUT";
  bad.target = "/registry/v1/services/x";
  bad.body = "{\"host\": \"h\"}";  // missing port
  auto result = httpserver::HttpClient::fetch("127.0.0.1", *port, bad);
  EXPECT_EQ(result.response.status, 400);

  httpmsg::Request unknown;
  unknown.target = "/other";
  EXPECT_EQ(httpserver::HttpClient::fetch("127.0.0.1", *port, unknown)
                .response.status,
            404);
}

TEST(RegistryHttpTest, ProxyResolvesEndpointsDynamically) {
  // Origin server registers itself; the agent's route has no static
  // endpoints and resolves through the registry per request.
  httpserver::HttpServer origin([](const httpmsg::Request&) {
    return httpmsg::make_response(200, "dynamic!");
  });
  auto origin_port = origin.start();
  ASSERT_TRUE(origin_port.ok());

  Registry reg(minutes(5));
  RegistryServer reg_server(&reg);
  auto reg_port = reg_server.start();
  ASSERT_TRUE(reg_port.ok());
  RegistryClient reg_client("127.0.0.1", *reg_port);
  ASSERT_TRUE(
      reg_client.register_instance("backend", {"127.0.0.1", *origin_port})
          .ok());

  proxy::GremlinAgentProxy agent("webapp", "webapp/0");
  proxy::Route route;
  route.destination = "backend";  // no endpoints: dynamic
  agent.add_route(route);
  agent.set_endpoint_resolver(
      [&reg_client](const std::string& dst) -> std::vector<proxy::Upstream> {
        auto eps = reg_client.lookup(dst);
        std::vector<proxy::Upstream> out;
        if (eps.ok()) {
          for (const auto& ep : *eps) out.push_back({ep.host, ep.port});
        }
        return out;
      });
  ASSERT_TRUE(agent.start().ok());

  httpmsg::Request req;
  req.headers.set(httpmsg::kRequestIdHeader, "test-1");
  auto result = httpserver::HttpClient::fetch(
      "127.0.0.1", agent.route_port("backend"), req);
  EXPECT_FALSE(result.failed());
  EXPECT_EQ(result.response.body, "dynamic!");

  // Deregister: the next resolution finds nothing and the proxy 502s.
  ASSERT_TRUE(
      reg_client.deregister("backend", {"127.0.0.1", *origin_port}).ok());
  auto gone = httpserver::HttpClient::fetch(
      "127.0.0.1", agent.route_port("backend"), req);
  EXPECT_EQ(gone.response.status, 502);

  agent.stop();
  origin.stop();
}

}  // namespace
}  // namespace gremlin::registry
