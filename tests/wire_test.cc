// Wire serialization tests: varint/zigzag/string primitives, frame
// reassembly from arbitrarily chunked reads, and the ExperimentResult
// codec round trip — every field that feeds fingerprint() or
// verdict_fingerprint() must survive the process boundary bit-for-bit.
// A seeded fuzz loop hammers the codec with adversarial field contents
// (embedded NULs, newlines, long strings, extreme tick counts).
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "campaign/result_codec.h"
#include "campaign/runner.h"
#include "common/rng.h"
#include "common/wire.h"

namespace gremlin::campaign {
namespace {

TEST(WireTest, VarintRoundTripEdgeValues) {
  const uint64_t values[] = {0,
                             1,
                             0x7f,
                             0x80,
                             0x3fff,
                             0x4000,
                             UINT32_MAX,
                             uint64_t{1} << 56,
                             std::numeric_limits<uint64_t>::max()};
  wire::Writer w;
  for (const uint64_t v : values) w.u64(v);
  wire::Reader r(w.buffer());
  for (const uint64_t v : values) EXPECT_EQ(r.u64(), v);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireTest, ZigzagRoundTripSignedExtremes) {
  const int64_t values[] = {0,
                            -1,
                            1,
                            -64,
                            64,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  wire::Writer w;
  for (const int64_t v : values) w.i64(v);
  wire::Reader r(w.buffer());
  for (const int64_t v : values) EXPECT_EQ(r.i64(), v);
  EXPECT_TRUE(r.ok());
  // Small magnitudes of either sign must stay short: -1 encodes in 1 byte.
  wire::Writer small;
  small.i64(-1);
  EXPECT_EQ(small.size(), 1u);
}

TEST(WireTest, StringsCarryArbitraryBytes) {
  const std::string nasty("a\0b\nc\"\\\xff", 8);
  wire::Writer w;
  w.str(nasty);
  w.str("");
  w.str(std::string(100000, 'x'));
  wire::Reader r(w.buffer());
  EXPECT_EQ(r.str(), nasty);
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string(100000, 'x'));
  EXPECT_TRUE(r.ok());
}

TEST(WireTest, TruncatedReadsFailSoftNotLoud) {
  wire::Writer w;
  w.u64(300);
  w.str("hello");
  const std::string& bytes = w.buffer();
  // Every proper prefix must decode to !ok(), never crash or loop.
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    wire::Reader r(std::string_view(bytes).substr(0, cut));
    (void)r.u64();
    (void)r.str();
    EXPECT_FALSE(r.ok()) << "prefix length " << cut;
  }
}

TEST(WireTest, StringLengthBeyondBufferFails) {
  wire::Writer w;
  w.u64(1000);  // claims 1000 bytes follow
  w.str("x");
  wire::Reader r(w.buffer());
  (void)r.str();
  EXPECT_FALSE(r.ok());
}

TEST(FrameBufferTest, ReassemblesFromSingleByteChunks) {
  std::string stream;
  const std::vector<std::string> payloads = {"", "a", std::string(5000, 'z'),
                                             std::string("\0\1\2", 3)};
  for (const auto& p : payloads) {
    const uint32_t n = static_cast<uint32_t>(p.size());
    char hdr[4] = {static_cast<char>(n), static_cast<char>(n >> 8),
                   static_cast<char>(n >> 16), static_cast<char>(n >> 24)};
    stream.append(hdr, 4);
    stream.append(p);
  }

  // Feed one byte at a time — the worst chunking a pipe can produce.
  wire::FrameBuffer fb;
  std::vector<std::string> got;
  std::string payload;
  for (const char c : stream) {
    fb.append(&c, 1);
    while (fb.next(&payload)) got.push_back(payload);
  }
  EXPECT_FALSE(fb.corrupt());
  EXPECT_EQ(fb.pending(), 0u);
  ASSERT_EQ(got.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) EXPECT_EQ(got[i], payloads[i]);
}

TEST(FrameBufferTest, OversizedLengthPrefixIsCorruption) {
  const char hdr[4] = {'\xff', '\xff', '\xff', '\xff'};  // ~4 GiB frame
  wire::FrameBuffer fb;
  fb.append(hdr, 4);
  std::string payload;
  EXPECT_FALSE(fb.next(&payload));
  EXPECT_TRUE(fb.corrupt());
  // A corrupt stream never yields frames again.
  const char more[8] = {4, 0, 0, 0, 'a', 'b', 'c', 'd'};
  fb.append(more, 8);
  EXPECT_FALSE(fb.next(&payload));
}

ExperimentResult sample_result() {
  ExperimentResult r;
  r.id = "abort(svc0->svc2)";
  r.seed = 42;
  r.ok = true;
  r.rules_installed = 3;
  control::CheckResult failing;
  failing.name = "max_user_failures<=0";
  failing.passed = false;
  failing.detail = "7 user-visible failures";
  control::CheckResult passing;
  passing.name = "bounded_latency";
  passing.passed = true;
  r.checks = {failing, passing};
  r.checks_passed = 1;
  r.requests = 40;
  r.failures = 7;
  r.latencies = {usec(1500), usec(250000), usec(0)};
  r.statuses = {200, 503, 200};
  r.early_terminated = true;
  return r;
}

TEST(ResultCodecTest, RoundTripPreservesFingerprints) {
  const ExperimentResult original = sample_result();
  ExperimentResult decoded;
  ASSERT_TRUE(decode_result(encode_result(original), &decoded));

  EXPECT_EQ(decoded.fingerprint(), original.fingerprint());
  EXPECT_EQ(decoded.verdict_fingerprint(), original.verdict_fingerprint());
  EXPECT_EQ(decoded.id, original.id);
  EXPECT_EQ(decoded.seed, original.seed);
  EXPECT_EQ(decoded.early_terminated, original.early_terminated);
  EXPECT_EQ(decoded.checks_passed, 1u);
  ASSERT_EQ(decoded.checks.size(), 2u);
  EXPECT_EQ(decoded.checks[0].detail, "7 user-visible failures");
  EXPECT_EQ(control::failure_signature(decoded.checks),
            control::failure_signature(original.checks));
  ASSERT_EQ(decoded.latencies.size(), 3u);
  EXPECT_EQ(decoded.latencies[1], usec(250000));
}

TEST(ResultCodecTest, RoundTripPreservesErrorResults) {
  ExperimentResult original;
  original.id = "crash(svc3)";
  original.seed = 7;
  original.ok = false;
  original.error = "translate failed: no such edge \"svc9->svc3\"\n";
  ExperimentResult decoded;
  ASSERT_TRUE(decode_result(encode_result(original), &decoded));
  EXPECT_FALSE(decoded.ok);
  EXPECT_EQ(decoded.error, original.error);
  EXPECT_EQ(decoded.fingerprint(), original.fingerprint());
}

TEST(ResultCodecTest, RejectsVersionSkewAndTruncation) {
  std::string bytes = encode_result(sample_result());
  ExperimentResult decoded;

  std::string skewed = bytes;
  skewed[0] = static_cast<char>(kResultWireVersion + 1);
  EXPECT_FALSE(decode_result(skewed, &decoded));

  for (const size_t cut : {size_t{0}, size_t{1}, bytes.size() / 2,
                           bytes.size() - 1}) {
    EXPECT_FALSE(
        decode_result(std::string_view(bytes).substr(0, cut), &decoded))
        << "prefix length " << cut;
  }

  // Trailing garbage after a valid result is also a framing error.
  EXPECT_FALSE(decode_result(bytes + "x", &decoded));
}

TEST(ResultCodecTest, CampaignFingerprintSurvivesTheBoundary) {
  // A whole campaign shipped result-by-result (exactly what the process
  // pool does) reproduces both campaign-level digests.
  CampaignResult original;
  original.experiments.push_back(sample_result());
  ExperimentResult errored;
  errored.id = "delay(svc1->svc3)";
  errored.seed = 43;
  errored.ok = false;
  errored.error = "install failed";
  original.experiments.push_back(errored);

  CampaignResult rebuilt;
  for (const auto& e : original.experiments) {
    ExperimentResult decoded;
    ASSERT_TRUE(decode_result(encode_result(e), &decoded));
    rebuilt.experiments.push_back(std::move(decoded));
  }
  EXPECT_EQ(rebuilt.fingerprint(), original.fingerprint());
  EXPECT_EQ(rebuilt.verdict_fingerprint(), original.verdict_fingerprint());
  EXPECT_EQ(rebuilt.passed(), original.passed());
  EXPECT_EQ(rebuilt.errors(), original.errors());
}

std::string fuzz_string(Rng* rng) {
  const size_t len = rng->next_below(64);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng->next_below(256)));
  }
  return s;
}

TEST(ResultCodecTest, SeededFuzzRoundTrip) {
  Rng rng(0xf00dface);
  for (int iter = 0; iter < 500; ++iter) {
    ExperimentResult r;
    r.id = fuzz_string(&rng);
    r.seed = rng.next_u64();
    r.ok = rng.bernoulli(0.8);
    if (!r.ok) r.error = fuzz_string(&rng);
    r.rules_installed = rng.next_below(100);
    const size_t checks = rng.next_below(5);
    for (size_t i = 0; i < checks; ++i) {
      control::CheckResult c;
      c.name = fuzz_string(&rng);
      c.passed = rng.bernoulli(0.5);
      c.detail = fuzz_string(&rng);
      if (c.passed) ++r.checks_passed;
      r.checks.push_back(std::move(c));
    }
    r.requests = rng.next_below(1000);
    r.failures = rng.next_below(r.requests + 1);
    const size_t samples = rng.next_below(20);
    for (size_t i = 0; i < samples; ++i) {
      r.latencies.push_back(Duration(static_cast<int64_t>(rng.next_u64())));
      r.statuses.push_back(static_cast<int>(rng.next_below(600)));
    }
    r.early_terminated = rng.bernoulli(0.3);

    ExperimentResult decoded;
    ASSERT_TRUE(decode_result(encode_result(r), &decoded)) << "iter " << iter;
    ASSERT_EQ(decoded.fingerprint(), r.fingerprint()) << "iter " << iter;
    ASSERT_EQ(decoded.verdict_fingerprint(), r.verdict_fingerprint())
        << "iter " << iter;
  }
}

TEST(ResultCodecTest, FuzzDecodeOfRandomBytesNeverCrashes) {
  Rng rng(0xdec0de);
  ExperimentResult sink;
  for (int iter = 0; iter < 500; ++iter) {
    std::string bytes = fuzz_string(&rng);
    if (rng.bernoulli(0.5)) {
      bytes.insert(bytes.begin(), static_cast<char>(kResultWireVersion));
    }
    (void)decode_result(bytes, &sink);  // must not crash, hang, or throw
  }
}

TEST(ResultCodecTest, RejectsPreVocabularyFrames) {
  // v1 frames predate the fault-vocabulary extension; a binary that still
  // speaks v1 must be refused loudly rather than silently merged.
  ASSERT_GE(kResultWireVersion, 2);
  std::string bytes = encode_result(sample_result());
  bytes[0] = 1;
  ExperimentResult decoded;
  EXPECT_FALSE(decode_result(bytes, &decoded));
}

// --- FaultRule codec ---------------------------------------------------------

TEST(RuleCodecTest, RoundTripPreservesEveryVocabularyField) {
  faults::FaultRule r =
      faults::FaultRule::delay_rule("svc0", "svc*", msec(100), "test-*", 0.25);
  r.delay_distribution = faults::DelayDistribution::kEmpirical;
  r.delay_min = msec(1);
  r.delay_max = msec(90);
  r.delay_mean = msec(33);
  r.delay_values = {msec(5), msec(20), msec(80)};
  r.after = msec(40);
  r.window_duration = msec(60);
  r.max_matches = 17;

  faults::FaultRule decoded;
  ASSERT_TRUE(decode_rule(encode_rule(r), &decoded));
  EXPECT_EQ(decoded.id, r.id);
  EXPECT_EQ(decoded.source, r.source);
  EXPECT_EQ(decoded.destination, r.destination);
  EXPECT_EQ(decoded.type, r.type);
  EXPECT_EQ(decoded.pattern, r.pattern);
  EXPECT_EQ(decoded.probability, r.probability);  // exact: bit pattern
  EXPECT_EQ(decoded.delay_distribution, r.delay_distribution);
  EXPECT_EQ(decoded.delay_min, r.delay_min);
  EXPECT_EQ(decoded.delay_max, r.delay_max);
  EXPECT_EQ(decoded.delay_mean, r.delay_mean);
  EXPECT_EQ(decoded.delay_values, r.delay_values);
  EXPECT_EQ(decoded.after, r.after);
  EXPECT_EQ(decoded.window_duration, r.window_duration);
  EXPECT_EQ(decoded.max_matches, r.max_matches);
}

TEST(RuleCodecTest, SeededFuzzRoundTripOverVocabularyFields) {
  Rng rng(0xca11ab1e);
  const faults::DelayDistribution dists[] = {
      faults::DelayDistribution::kFixed, faults::DelayDistribution::kUniform,
      faults::DelayDistribution::kExponential,
      faults::DelayDistribution::kEmpirical};
  for (int iter = 0; iter < 500; ++iter) {
    faults::FaultRule r;
    r.id = fuzz_string(&rng);
    r.source = fuzz_string(&rng);
    r.destination = fuzz_string(&rng);
    r.type = static_cast<faults::FaultKind>(rng.next_below(4));
    r.on = rng.bernoulli(0.5) ? faults::MessageKind::kRequest
                              : faults::MessageKind::kResponse;
    r.pattern = fuzz_string(&rng);
    r.probability = rng.next_double();
    r.abort_code = static_cast<int>(rng.next_below(600)) - 1;
    r.delay_interval = Duration(static_cast<int64_t>(rng.next_below(1 << 20)));
    r.delay_distribution = dists[rng.next_below(4)];
    r.delay_min = Duration(static_cast<int64_t>(rng.next_below(1 << 16)));
    r.delay_max = r.delay_min + Duration(static_cast<int64_t>(
                                    rng.next_below(1 << 16)));
    r.delay_mean = Duration(static_cast<int64_t>(rng.next_below(1 << 16)));
    const size_t values = rng.next_below(6);
    for (size_t i = 0; i < values; ++i) {
      r.delay_values.push_back(
          Duration(static_cast<int64_t>(rng.next_below(1 << 16)) + 1));
    }
    r.after = Duration(static_cast<int64_t>(rng.next_below(1 << 20)));
    r.window_duration =
        Duration(static_cast<int64_t>(rng.next_below(1 << 20)));
    r.body_pattern = fuzz_string(&rng);
    r.replace_bytes = fuzz_string(&rng);
    r.max_matches = rng.next_u64();

    faults::FaultRule decoded;
    const std::string bytes = encode_rule(r);
    ASSERT_TRUE(decode_rule(bytes, &decoded)) << "iter " << iter;
    // Re-encoding the decoded rule must reproduce the bytes exactly — the
    // codec is a bijection on its field set.
    EXPECT_EQ(encode_rule(decoded), bytes) << "iter " << iter;
  }
}

TEST(RuleCodecTest, TruncationAndSkewFailSoft) {
  faults::FaultRule r = faults::FaultRule::abort_rule("a", "b", 503);
  r.after = msec(5);
  const std::string bytes = encode_rule(r);
  faults::FaultRule sink;

  std::string skewed = bytes;
  skewed[0] = static_cast<char>(kRuleWireVersion + 1);
  EXPECT_FALSE(decode_rule(skewed, &sink));

  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decode_rule(std::string_view(bytes).substr(0, cut), &sink))
        << "prefix length " << cut;
  }
  EXPECT_FALSE(decode_rule(bytes + "x", &sink));
}

TEST(RuleCodecTest, FuzzDecodeOfRandomBytesNeverCrashes) {
  Rng rng(0xbadc0de5);
  faults::FaultRule sink;
  for (int iter = 0; iter < 500; ++iter) {
    std::string bytes = fuzz_string(&rng);
    if (rng.bernoulli(0.5)) {
      bytes.insert(bytes.begin(), static_cast<char>(kRuleWireVersion));
    }
    (void)decode_rule(bytes, &sink);  // must not crash, hang, or throw
  }
}

}  // namespace
}  // namespace gremlin::campaign
