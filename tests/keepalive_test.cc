// Protocol-level tests for HTTP/1.1 keep-alive on the threaded server:
// sequential requests on one connection, pipelined requests, Connection:
// close semantics, and prompt shutdown with idle peers attached.
#include <gtest/gtest.h>

#include <chrono>

#include "httpmsg/parser.h"
#include "httpserver/server.h"
#include "net/socket.h"

namespace gremlin::httpserver {
namespace {

std::unique_ptr<HttpServer> echo_server(uint16_t* port) {
  auto server = std::make_unique<HttpServer>([](const httpmsg::Request& r) {
    return httpmsg::make_response(200, "echo:" + r.target);
  });
  auto started = server->start();
  EXPECT_TRUE(started.ok());
  *port = started.value_or(0);
  return server;
}

// Reads exactly one response from the stream.
httpmsg::Response read_response(net::TcpStream* stream) {
  httpmsg::Parser parser(httpmsg::Parser::Kind::kResponse);
  char buffer[4096];
  (void)stream->set_read_timeout(sec(5));
  while (!parser.complete()) {
    auto n = stream->read(buffer, sizeof(buffer));
    EXPECT_TRUE(n.ok());
    if (!n.ok() || n.value() == 0) break;
    auto consumed = parser.feed(std::string_view(buffer, n.value()));
    EXPECT_TRUE(consumed.ok());
    if (!consumed.ok()) break;
  }
  EXPECT_TRUE(parser.complete());
  return parser.response();
}

std::string raw_request(const std::string& target, bool close) {
  httpmsg::Request req;
  req.target = target;
  req.headers.set("Host", "svc");
  if (close) req.headers.set("Connection", "close");
  return httpmsg::serialize(req);
}

TEST(KeepAliveTest, SequentialRequestsOnOneConnection) {
  uint16_t port = 0;
  auto server = echo_server(&port);
  auto stream = net::TcpStream::connect("127.0.0.1", port);
  ASSERT_TRUE(stream.ok());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        stream->write_all(raw_request("/r" + std::to_string(i), false)).ok());
    const auto resp = read_response(&stream.value());
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "echo:/r" + std::to_string(i));
  }
  EXPECT_EQ(server->connections_accepted(), 1u);
  EXPECT_EQ(server->requests_served(), 3u);
}

TEST(KeepAliveTest, PipelinedRequestsAllAnswered) {
  uint16_t port = 0;
  auto server = echo_server(&port);
  auto stream = net::TcpStream::connect("127.0.0.1", port);
  ASSERT_TRUE(stream.ok());

  // Send both requests before reading anything. Both responses may arrive
  // in one TCP segment, so parse them out of a shared byte buffer.
  ASSERT_TRUE(stream->write_all(raw_request("/first", false) +
                                raw_request("/second", false))
                  .ok());
  (void)stream->set_read_timeout(sec(5));
  std::string buffered;
  std::vector<std::string> bodies;
  httpmsg::Parser parser(httpmsg::Parser::Kind::kResponse);
  char buffer[4096];
  while (bodies.size() < 2) {
    if (!buffered.empty()) {
      auto consumed = parser.feed(buffered);
      ASSERT_TRUE(consumed.ok());
      buffered.erase(0, consumed.value());
    }
    if (parser.complete()) {
      bodies.push_back(parser.response().body);
      parser.reset();
      continue;
    }
    auto n = stream->read(buffer, sizeof(buffer));
    ASSERT_TRUE(n.ok());
    ASSERT_GT(n.value(), 0u);
    buffered.append(buffer, n.value());
  }
  EXPECT_EQ(bodies[0], "echo:/first");
  EXPECT_EQ(bodies[1], "echo:/second");
  EXPECT_EQ(server->connections_accepted(), 1u);
}

TEST(KeepAliveTest, ConnectionCloseEndsTheConnection) {
  uint16_t port = 0;
  auto server = echo_server(&port);
  auto stream = net::TcpStream::connect("127.0.0.1", port);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream->write_all(raw_request("/only", true)).ok());
  EXPECT_EQ(read_response(&stream.value()).status, 200);
  // The server closes: the next read returns 0 (EOF).
  char buffer[16];
  (void)stream->set_read_timeout(sec(2));
  auto n = stream->read(buffer, sizeof(buffer));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 0u);
}

TEST(KeepAliveTest, StopIsPromptWithIdlePeer) {
  uint16_t port = 0;
  auto server = echo_server(&port);
  auto stream = net::TcpStream::connect("127.0.0.1", port);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream->write_all(raw_request("/x", false)).ok());
  EXPECT_EQ(read_response(&stream.value()).status, 200);

  // The connection idles; stop() must not wait out the 10s read timeout.
  const auto start = std::chrono::steady_clock::now();
  server->stop();
  const auto elapsed = std::chrono::duration_cast<Duration>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed, sec(2));
}

TEST(KeepAliveTest, MalformedRequestDropsConnection) {
  uint16_t port = 0;
  auto server = echo_server(&port);
  auto stream = net::TcpStream::connect("127.0.0.1", port);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream->write_all("NOT-HTTP\r\n\r\n").ok());
  char buffer[16];
  (void)stream->set_read_timeout(sec(2));
  auto n = stream->read(buffer, sizeof(buffer));
  // Either clean close or reset — never a hang or a bogus response.
  if (n.ok()) {
    EXPECT_EQ(n.value(), 0u);
  }
  EXPECT_EQ(server->requests_served(), 0u);
}

}  // namespace
}  // namespace gremlin::httpserver
