// Fault-space search tests: combination generation (k-ascending order,
// budget truncation, pairwise covering), dependency-aware pruning against
// hand-built call graphs, delta-debugging shrinking with scripted fake
// runners, and the end-to-end acceptance run on the seeded-bug redundant
// app: ≥50% of the k ≤ 2 space pruned, the injected failure found, and the
// exact minimal 2-fault reproducer recovered with a replayable seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "campaign/app_spec.h"
#include "report/search_report.h"
#include "search/combinations.h"
#include "search/pruner.h"
#include "search/search.h"
#include "search/shrinker.h"

namespace gremlin::search {
namespace {

// ------------------------------------------------------------- generator

topology::AppGraph fan_graph() {
  // user -> front -> {db, cache}
  topology::AppGraph g;
  g.add_edge("user", "front");
  g.add_edge("front", "db");
  g.add_edge("front", "cache");
  return g;
}

TEST(GeneratorTest, EnumeratesFaultPointsDeterministically) {
  GeneratorOptions options;
  const auto points =
      enumerate_fault_points(fan_graph(), options, {"user", "front"});
  // Edge kinds (abort, delay, disconnect) on front->cache and front->db
  // (edges into excluded services are skipped), service kinds (overload,
  // crash) on cache and db.
  ASSERT_EQ(points.size(), 3u * 2u + 2u * 2u);
  for (const auto& p : points) {
    EXPECT_FALSE(p.label.empty());
    EXPECT_FALSE(p.trigger_edges.empty());
    EXPECT_EQ(p.label, describe(p.spec));
  }
  // Deterministic: a second enumeration is identical.
  const auto again =
      enumerate_fault_points(fan_graph(), options, {"user", "front"});
  ASSERT_EQ(again.size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(again[i].label, points[i].label);
  }
}

TEST(GeneratorTest, ServicePointsTriggerOnDependentEdges) {
  GeneratorOptions options;
  options.kinds = {control::FailureSpec::Kind::kCrash};
  topology::AppGraph g;
  g.add_edge("a", "shared");
  g.add_edge("b", "shared");
  const auto points = enumerate_fault_points(g, options, {});
  ASSERT_EQ(points.size(), 3u);  // crash(a), crash(b), crash(shared)
  const auto shared = std::find_if(
      points.begin(), points.end(),
      [](const FaultPoint& p) { return p.label == "crash(shared)"; });
  ASSERT_NE(shared, points.end());
  // Crash(shared) manipulates traffic on every dependent edge.
  ASSERT_EQ(shared->trigger_edges.size(), 2u);
  EXPECT_EQ(shared->trigger_edges[0].src, "a");
  EXPECT_EQ(shared->trigger_edges[1].src, "b");
}

TEST(GeneratorTest, CombinationsAreKAscendingAndComplete) {
  GeneratorOptions options;
  const auto points =
      enumerate_fault_points(fan_graph(), options, {"user", "front"});
  ASSERT_EQ(points.size(), 10u);

  size_t truncated = 123;
  const auto combos = generate_combinations(points, options, &truncated);
  EXPECT_EQ(truncated, 0u);
  // C(10,1) + C(10,2).
  ASSERT_EQ(combos.size(), 10u + 45u);

  std::set<std::vector<size_t>> seen;
  size_t last_k = 0;
  for (const auto& c : combos) {
    EXPECT_GE(c.points.size(), last_k) << "k must be non-decreasing";
    last_k = c.points.size();
    EXPECT_TRUE(std::is_sorted(c.points.begin(), c.points.end()));
    EXPECT_TRUE(seen.insert(c.points).second) << c.label << " duplicated";
    EXPECT_FALSE(c.label.empty());
  }
}

TEST(GeneratorTest, BudgetKeepsSinglesDropsDeepest) {
  GeneratorOptions options;
  options.max_combinations = 20;
  const auto points =
      enumerate_fault_points(fan_graph(), options, {"user", "front"});
  size_t truncated = 0;
  const auto combos = generate_combinations(points, options, &truncated);
  ASSERT_EQ(combos.size(), 20u);
  EXPECT_EQ(truncated, 35u);  // 55 total - 20 kept
  // Generation is k-ascending, so every single survives the cut.
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(combos[i].points.size(), 1u);
}

TEST(GeneratorTest, MaxKIsClamped) {
  const auto points = enumerate_fault_points(fan_graph(), GeneratorOptions{},
                                             {"user", "front"});
  GeneratorOptions low;
  low.max_k = 0;
  EXPECT_EQ(generate_combinations(points, low).size(), points.size());

  GeneratorOptions high;
  high.max_k = 9;  // clamped to 3
  high.max_combinations = 0;
  const auto combos = generate_combinations(points, high);
  // C(10,1) + C(10,2) + C(10,3).
  EXPECT_EQ(combos.size(), 10u + 45u + 120u);
}

TEST(GeneratorTest, PairwiseCoversEveryPairWithFewerCombinations) {
  const auto points = enumerate_fault_points(fan_graph(), GeneratorOptions{},
                                             {"user", "front"});
  GeneratorOptions options;
  options.max_k = 3;
  options.pairwise = true;
  options.max_combinations = 0;
  const auto combos = generate_combinations(points, options);

  // Far below the exhaustive 175, but every pair still co-occurs somewhere.
  EXPECT_LT(combos.size(), 175u / 2);
  std::set<std::pair<size_t, size_t>> covered;
  for (const auto& c : combos) {
    for (size_t i = 0; i < c.points.size(); ++i) {
      for (size_t j = i + 1; j < c.points.size(); ++j) {
        covered.insert({c.points[i], c.points[j]});
      }
    }
  }
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      EXPECT_TRUE(covered.count({i, j})) << i << "," << j << " uncovered";
    }
  }
}

// ---------------------------------------------------------------- pruner

FaultPoint edge_point(const std::string& src, const std::string& dst) {
  FaultPoint p;
  p.spec = control::FailureSpec::abort_edge(src, dst);
  p.label = describe(p.spec);
  p.trigger_edges = {{src, dst}};
  return p;
}

Combination combo_of(std::vector<size_t> indices,
                     const std::vector<FaultPoint>& points) {
  Combination c;
  c.points = std::move(indices);
  for (const size_t i : c.points) {
    if (!c.label.empty()) c.label += " + ";
    c.label += points[i].label;
  }
  return c;
}

TEST(PrunerTest, UnreachableFaultIsPruned) {
  logstore::CallGraph observed;
  observed.edges = {{"a", "b"}};
  observed.paths = {{{"a", "b"}}};

  const std::vector<FaultPoint> points = {edge_point("a", "b"),
                                          edge_point("a", "ghost")};
  EXPECT_TRUE(decide(points, combo_of({0}, points), observed).keep());

  const PruneDecision pruned =
      decide(points, combo_of({1}, points), observed);
  EXPECT_EQ(pruned.verdict, PruneVerdict::kUnreachableFault);
  EXPECT_NE(pruned.detail.find("abort(a->ghost)"), std::string::npos);

  // One unreachable member poisons the whole combination.
  EXPECT_EQ(decide(points, combo_of({0, 1}, points), observed).verdict,
            PruneVerdict::kUnreachableFault);
}

TEST(PrunerTest, DisjointPathsCannotInteract) {
  // Requests either took a->b or a->c, never both: a pair faulting both
  // edges cannot compound on any flow.
  logstore::CallGraph observed;
  observed.edges = {{"a", "b"}, {"a", "c"}};
  observed.paths = {{{"a", "b"}}, {{"a", "c"}}};

  const std::vector<FaultPoint> points = {edge_point("a", "b"),
                                          edge_point("a", "c")};
  // Each single is individually reachable.
  EXPECT_TRUE(decide(points, combo_of({0}, points), observed).keep());
  EXPECT_TRUE(decide(points, combo_of({1}, points), observed).keep());

  const PruneDecision pruned =
      decide(points, combo_of({0, 1}, points), observed);
  EXPECT_EQ(pruned.verdict, PruneVerdict::kNoSharedPath);
}

TEST(PrunerTest, SharedPathKeepsThePair) {
  logstore::CallGraph observed;
  observed.edges = {{"a", "b"}, {"a", "c"}};
  observed.paths = {{{"a", "b"}, {"a", "c"}}};  // one flow touched both

  const std::vector<FaultPoint> points = {edge_point("a", "b"),
                                          edge_point("a", "c")};
  EXPECT_TRUE(decide(points, combo_of({0, 1}, points), observed).keep());
}

TEST(PrunerTest, ServiceFaultReachableThroughAnyDependentEdge) {
  logstore::CallGraph observed;
  observed.edges = {{"a", "shared"}};
  observed.paths = {{{"a", "shared"}}};

  FaultPoint crash;
  crash.spec = control::FailureSpec::crash("shared");
  crash.label = describe(crash.spec);
  crash.trigger_edges = {{"a", "shared"}, {"b", "shared"}};

  const std::vector<FaultPoint> points = {crash};
  // b->shared was never observed, but a->shared was: the crash is live.
  EXPECT_TRUE(decide(points, combo_of({0}, points), observed).keep());
}

// -------------------------------------------------------------- shrinker

campaign::ExperimentResult fake_result(
    const std::vector<std::string>& failed_checks) {
  campaign::ExperimentResult r;
  r.ok = true;
  control::CheckResult passing;
  passing.name = "AlwaysFine";
  passing.passed = true;
  r.checks.push_back(passing);
  ++r.checks_passed;
  for (const auto& name : failed_checks) {
    control::CheckResult failing;
    failing.name = name;
    failing.passed = false;
    r.checks.push_back(failing);
  }
  return r;
}

campaign::Experiment faulty_experiment(std::vector<std::string> dsts,
                                       size_t load_count = 1) {
  campaign::Experiment e;
  e.id = "scripted";
  for (auto& dst : dsts) {
    e.failures.push_back(control::FailureSpec::abort_edge("x", dst));
  }
  e.load.count = load_count;
  return e;
}

TEST(ShrinkerTest, AlreadyMinimalReturnsUnchanged) {
  size_t runs = 0;
  const RunFn always_fails = [&](const campaign::Experiment&) {
    ++runs;
    return fake_result({"Broken"});
  };
  const ShrinkResult result =
      shrink(faulty_experiment({"a"}, /*load_count=*/1), always_fails);
  EXPECT_TRUE(result.reproduced);
  EXPECT_FALSE(result.flaky);
  EXPECT_TRUE(result.already_minimal());
  EXPECT_EQ(result.faults_after, 1u);
  EXPECT_EQ(result.load_after, 1u);
  EXPECT_EQ(result.signature, "Broken");
  EXPECT_EQ(runs, 1u);  // just the verification re-run
}

TEST(ShrinkerTest, TripleFaultShrinksToSingleCause) {
  // Only the fault on edge x->b matters; a and c are innocent bystanders.
  const RunFn culprit_is_b = [](const campaign::Experiment& e) {
    for (const auto& f : e.failures) {
      if (f.b == "b") return fake_result({"Broken"});
    }
    return fake_result({});
  };
  const ShrinkResult result =
      shrink(faulty_experiment({"a", "b", "c"}), culprit_is_b);
  EXPECT_TRUE(result.reproduced);
  EXPECT_EQ(result.faults_before, 3u);
  ASSERT_EQ(result.faults_after, 1u);
  ASSERT_EQ(result.minimal.failures.size(), 1u);
  EXPECT_EQ(result.minimal.failures[0].b, "b");
  EXPECT_FALSE(result.already_minimal());
}

TEST(ShrinkerTest, NonReproducibleFailureIsFlakyNotALoop) {
  size_t runs = 0;
  const RunFn always_passes = [&](const campaign::Experiment&) {
    ++runs;
    return fake_result({});
  };
  const ShrinkResult result =
      shrink(faulty_experiment({"a", "b", "c"}), always_passes);
  EXPECT_TRUE(result.flaky);
  EXPECT_FALSE(result.reproduced);
  EXPECT_EQ(runs, 1u);  // reported immediately, no shrink attempts
  EXPECT_EQ(result.minimal.failures.size(), 3u);  // input returned unshrunk
}

TEST(ShrinkerTest, ReductionMustPreserveTheFailureMode) {
  // Together a and b violate two checks; either alone violates only one.
  // Dropping a fault would "shrink" the bug into a different bug, so the
  // pair must survive as-is.
  const RunFn mode_shifts = [](const campaign::Experiment& e) {
    if (e.failures.size() >= 2) return fake_result({"Slow", "Wrong"});
    return fake_result({"Slow"});
  };
  ShrinkOptions options;
  options.shrink_load = false;
  const ShrinkResult result =
      shrink(faulty_experiment({"a", "b"}), mode_shifts, options);
  EXPECT_TRUE(result.reproduced);
  EXPECT_EQ(result.signature, "Slow + Wrong");
  EXPECT_EQ(result.faults_after, 2u);
  EXPECT_TRUE(result.already_minimal());
}

TEST(ShrinkerTest, LoadHalvesToTheFloor) {
  const RunFn always_fails = [](const campaign::Experiment&) {
    return fake_result({"Broken"});
  };
  const ShrinkResult result =
      shrink(faulty_experiment({"a"}, /*load_count=*/40), always_fails);
  EXPECT_EQ(result.load_before, 40u);
  EXPECT_EQ(result.load_after, 1u);
  EXPECT_EQ(result.minimal.load.count, 1u);
}

TEST(ShrinkerTest, RunBudgetIsRespected) {
  size_t runs = 0;
  const RunFn always_fails = [&](const campaign::Experiment&) {
    ++runs;
    return fake_result({"Broken"});
  };
  ShrinkOptions options;
  options.max_runs = 1;  // verification only
  const ShrinkResult result =
      shrink(faulty_experiment({"a", "b", "c"}, 40), always_fails, options);
  EXPECT_TRUE(result.reproduced);
  EXPECT_EQ(runs, 1u);
  EXPECT_EQ(result.faults_after, 3u);
  EXPECT_EQ(result.load_after, 40u);
}

// ---------------------------------------------------- end-to-end search

control::LoadOptions small_load() {
  control::LoadOptions load;
  load.count = 40;
  load.gap = msec(5);
  return load;
}

TEST(SearchEndToEndTest, RedundantAppYieldsExactMinimalPair) {
  // The acceptance run of ISSUE.md: the redundant app only fails when BOTH
  // replicas are impaired, the audit subtree is never exercised by the
  // baseline workload, and the search must (a) prune at least half the
  // generated k ≤ 2 space from the observed call graph alone and (b) shrink
  // every failure to an exact 2-fault reproducer.
  SearchOptions options;
  options.load = small_load();
  options.seed = 7;
  options.threads = 4;
  const SearchOutcome outcome =
      run_search(campaign::AppSpec::redundant(), options);

  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.baseline_passed);
  // user->frontend, frontend->replica-a, frontend->replica-b; /admin (and
  // with it audit->archive) is never requested.
  EXPECT_EQ(outcome.observed_edges, 3u);

  // 4 edges x 3 edge kinds + 4 services x 2 service kinds.
  EXPECT_EQ(outcome.fault_points, 20u);
  EXPECT_EQ(outcome.generated, 210u);  // C(20,1) + C(20,2)
  EXPECT_EQ(outcome.truncated, 0u);
  EXPECT_GE(outcome.pruned * 2, outcome.generated)
      << "call-graph pruning must remove at least half the space";
  EXPECT_EQ(outcome.pruned + outcome.ran, outcome.generated);
  EXPECT_EQ(outcome.errors, 0u);

  // Every failure is a genuine 2-fault interaction: the replicas mirror
  // each other, so no single fault reaches the user.
  ASSERT_TRUE(outcome.found_failures());
  EXPECT_EQ(outcome.failed, outcome.findings.size());  // all 1-minimal pairs
  for (const auto& f : outcome.findings) {
    EXPECT_FALSE(f.flaky) << f.minimal;
    ASSERT_EQ(f.faults.size(), 2u) << f.minimal;
    EXPECT_EQ(f.signature, "MaxUserFailures(0)");
    EXPECT_EQ(f.seed, 7u);
    EXPECT_EQ(f.load_count, 1u) << "one request suffices once both "
                                   "replicas are down";
    for (const auto& spec : f.faults) {
      EXPECT_TRUE(spec.b == "replica-a" || spec.b == "replica-b")
          << f.minimal;
    }
  }

  // The canonical injected bug is among them, verbatim.
  const bool has_double_abort = std::any_of(
      outcome.findings.begin(), outcome.findings.end(),
      [](const Finding& f) {
        return f.minimal ==
               "abort(frontend->replica-a) + abort(frontend->replica-b)";
      });
  EXPECT_TRUE(has_double_abort);
}

TEST(SearchEndToEndTest, ReplayedFindingReproducesWithReportedSeed) {
  SearchOptions options;
  options.load = small_load();
  options.seed = 11;
  options.threads = 2;
  const SearchOutcome outcome =
      run_search(campaign::AppSpec::redundant(), options);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  ASSERT_TRUE(outcome.found_failures());

  // Reconstruct the minimal experiment from the finding alone — exactly
  // what an operator replaying a report would do.
  const Finding& f = outcome.findings[0];
  campaign::Experiment replay;
  replay.id = "replay";
  replay.app = campaign::AppSpec::redundant();
  replay.failures = f.faults;
  replay.target = "frontend";
  replay.load = small_load();
  replay.load.count = f.load_count;
  replay.checks = {campaign::CheckSpec::max_user_failures(0)};
  replay.seed = f.seed;
  const campaign::ExperimentResult result =
      campaign::CampaignRunner::run_one(replay);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.passed()) << "minimal reproducer must still fail";
  EXPECT_EQ(control::failure_signature(result.checks), f.signature);
}

TEST(SearchEndToEndTest, PruningNeverChangesTheVerdictSet) {
  // Pruned combinations are exactly the ones that cannot fail: running the
  // full space without the pruner must surface the same minimal
  // reproducers, just more slowly.
  SearchOptions options;
  options.load = small_load();
  options.threads = 4;
  options.shrink = false;  // compare raw failing combinations

  SearchOptions unpruned = options;
  unpruned.prune = false;

  const SearchOutcome fast =
      run_search(campaign::AppSpec::redundant(), options);
  const SearchOutcome full =
      run_search(campaign::AppSpec::redundant(), unpruned);
  ASSERT_TRUE(fast.ok) << fast.error;
  ASSERT_TRUE(full.ok) << full.error;
  EXPECT_EQ(full.pruned, 0u);
  EXPECT_EQ(full.ran, full.generated);

  auto failing_labels = [](const SearchOutcome& o) {
    std::set<std::string> labels;
    for (const auto& c : o.combos) {
      if (c.ran && !c.passed && !c.error) labels.insert(c.label);
    }
    return labels;
  };
  EXPECT_EQ(failing_labels(fast), failing_labels(full));
  EXPECT_GT(fast.pruned, 0u);
}

TEST(SearchEndToEndTest, SearchIsDeterministicAcrossThreads) {
  SearchOptions options;
  options.load = small_load();
  options.threads = 1;
  SearchOptions parallel = options;
  parallel.threads = 8;

  const SearchOutcome a = run_search(campaign::AppSpec::redundant(), options);
  const SearchOutcome b =
      run_search(campaign::AppSpec::redundant(), parallel);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].minimal, b.findings[i].minimal);
    EXPECT_EQ(a.findings[i].signature, b.findings[i].signature);
    EXPECT_EQ(a.findings[i].load_count, b.findings[i].load_count);
  }
  EXPECT_EQ(a.pruned, b.pruned);
  EXPECT_EQ(a.failed, b.failed);
}

TEST(SearchEndToEndTest, BaselineCheckViolationAbortsTheSearch) {
  // A baseline that fails its own assertions makes every verdict
  // meaningless; the search must refuse to continue rather than report
  // phantom findings.
  SearchOptions options;
  options.load = small_load();
  options.checks = {
      campaign::CheckSpec::has_latency_slo("user", "frontend", 99, usec(1),
                                           /*with_rule=*/false)};
  const SearchOutcome outcome =
      run_search(campaign::AppSpec::redundant(), options);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("baseline"), std::string::npos);
  EXPECT_TRUE(outcome.findings.empty());
}

// ---------------------------------------------------------------- report

TEST(SearchReportTest, RendersFunnelAndReproducers) {
  SearchOptions options;
  options.load = small_load();
  options.seed = 7;
  options.threads = 2;
  const SearchOutcome outcome =
      run_search(campaign::AppSpec::redundant(), options);
  ASSERT_TRUE(outcome.ok);

  const report::SearchReport rep =
      report::build_search_report(outcome, "redundant");
  EXPECT_FALSE(rep.clean());

  const Json j = rep.to_json();
  ASSERT_TRUE(j.is_object());
  EXPECT_EQ(j["app"].as_string(), "redundant");
  EXPECT_EQ(j["space"]["generated"].as_int(), 210);
  EXPECT_GT(j["findings"].size(), 0u);
  EXPECT_EQ(j["combinations"].size(), 210u);

  const std::string md = rep.to_markdown();
  EXPECT_NE(md.find("Search funnel"), std::string::npos);
  EXPECT_NE(md.find("Minimal reproducers"), std::string::npos);
  EXPECT_NE(md.find("replay: seed 7"), std::string::npos);
}

}  // namespace
}  // namespace gremlin::search
