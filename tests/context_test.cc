// Tests for RequestContext semantics: respond-once, deferred work, request
// ID inheritance on sub-calls, and POST bodies through run_load.
#include <gtest/gtest.h>

#include "control/recipe.h"
#include "sim/simulation.h"

namespace gremlin::sim {
namespace {

TEST(RequestContextTest, OnlyFirstRespondCounts) {
  Simulation sim;
  ServiceConfig svc;
  svc.name = "svc";
  svc.handler = [](std::shared_ptr<RequestContext> ctx) {
    ctx->respond(200, "first");
    ctx->respond(500, "second");  // ignored
  };
  sim.add_service(svc);
  SimResponse got;
  int callbacks = 0;
  sim.inject("user", "svc", SimRequest{.request_id = "t"},
             [&](const SimResponse& r) {
               got = r;
               ++callbacks;
             });
  sim.run();
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(got.status, 200);
  EXPECT_EQ(got.body, "first");
}

TEST(RequestContextTest, DeferRunsOnVirtualClock) {
  Simulation sim;
  ServiceConfig svc;
  svc.name = "svc";
  svc.processing_time = kDurationZero;
  svc.handler = [](std::shared_ptr<RequestContext> ctx) {
    ctx->defer(msec(123), [ctx] { ctx->respond(200, "late"); });
  };
  sim.add_service(svc);
  TimePoint done{};
  sim.inject("user", "svc", SimRequest{.request_id = "t"},
             [&](const SimResponse&) { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, msec(123) + usec(1000));  // defer + 2 network hops
}

TEST(RequestContextTest, SubCallsInheritRequestId) {
  Simulation sim;
  std::string seen_id;
  ServiceConfig leaf;
  leaf.name = "leaf";
  leaf.handler = [&seen_id](std::shared_ptr<RequestContext> ctx) {
    seen_id = ctx->request().request_id;
    ctx->respond(200, "ok");
  };
  sim.add_service(leaf);
  ServiceConfig mid;
  mid.name = "mid";
  mid.handler = [](std::shared_ptr<RequestContext> ctx) {
    ctx->call("leaf", [ctx](const SimResponse&) { ctx->respond(200, "ok"); });
  };
  sim.add_service(mid);
  sim.inject("user", "mid", SimRequest{.request_id = "test-flow-9"},
             [](const SimResponse&) {});
  sim.run();
  EXPECT_EQ(seen_id, "test-flow-9");
}

TEST(RequestContextTest, RunLoadCarriesMethodAndBody) {
  Simulation sim;
  std::vector<std::string> methods;
  std::vector<std::string> bodies;
  ServiceConfig svc;
  svc.name = "svc";
  svc.handler = [&](std::shared_ptr<RequestContext> ctx) {
    methods.push_back(ctx->request().method.str());
    bodies.push_back(ctx->request().body);
    ctx->respond(201, "created");
  };
  sim.add_service(svc);
  topology::AppGraph graph;
  graph.add_edge("user", "svc");
  control::TestSession session(&sim, graph);
  control::LoadOptions load;
  load.count = 3;
  load.method = "POST";
  load.body = "payload";
  const auto result = session.run_load("user", "svc", load);
  ASSERT_EQ(methods.size(), 3u);
  for (const auto& m : methods) EXPECT_EQ(m, "POST");
  for (const auto& b : bodies) EXPECT_EQ(b, "payload");
  for (const int s : result.statuses) EXPECT_EQ(s, 201);
}

TEST(RequestContextTest, ServiceNameAndClockAccessors) {
  Simulation sim;
  std::string name;
  TimePoint when{};
  ServiceConfig svc;
  svc.name = "the-service";
  svc.processing_time = msec(7);
  svc.handler = [&](std::shared_ptr<RequestContext> ctx) {
    name = ctx->service_name();
    when = ctx->now();
    ctx->respond(200, "ok");
  };
  sim.add_service(svc);
  sim.inject("user", "the-service", SimRequest{.request_id = "t"},
             [](const SimResponse&) {});
  sim.run();
  EXPECT_EQ(name, "the-service");
  EXPECT_EQ(when, usec(500) + msec(7));  // one hop + processing
}

}  // namespace
}  // namespace gremlin::sim
