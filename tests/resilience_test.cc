// Unit tests for the resiliency patterns of Section 2.1: retry schedules,
// the circuit-breaker state machine, and bulkheads.
#include <gtest/gtest.h>

#include "resilience/bulkhead.h"
#include "resilience/circuit_breaker.h"
#include "resilience/policy.h"
#include "resilience/retry.h"

namespace gremlin::resilience {
namespace {

// ------------------------------------------------------------------ retry

TEST(RetryPolicyTest, ExponentialSchedule) {
  RetryPolicy p;
  p.max_retries = 4;
  p.base_backoff = msec(10);
  p.multiplier = 2.0;
  p.max_backoff = sec(10);
  EXPECT_EQ(p.backoff_before(1), msec(10));
  EXPECT_EQ(p.backoff_before(2), msec(20));
  EXPECT_EQ(p.backoff_before(3), msec(40));
  EXPECT_EQ(p.backoff_before(4), msec(80));
  EXPECT_EQ(p.backoff_before(0), kDurationZero);
}

TEST(RetryPolicyTest, BackoffCapped) {
  RetryPolicy p;
  p.base_backoff = sec(1);
  p.multiplier = 10.0;
  p.max_backoff = sec(5);
  EXPECT_EQ(p.backoff_before(1), sec(1));
  EXPECT_EQ(p.backoff_before(2), sec(5));
  EXPECT_EQ(p.backoff_before(3), sec(5));
}

TEST(RetryPolicyTest, ConstantBackoffWithUnitMultiplier) {
  RetryPolicy p;
  p.base_backoff = msec(5);
  p.multiplier = 1.0;
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(p.backoff_before(i), msec(5)) << i;
  }
}

TEST(RetryPolicyTest, TotalAttempts) {
  RetryPolicy p;
  p.max_retries = 3;
  EXPECT_EQ(p.total_attempts(), 4);
  p.max_retries = 0;
  EXPECT_EQ(p.total_attempts(), 1);
}

// --------------------------------------------------------- circuit breaker

TEST(CircuitBreakerTest, TripsAfterThresholdConsecutiveFailures) {
  CircuitBreaker cb({3, sec(10), 1});
  const TimePoint t0 = sec(0);
  EXPECT_TRUE(cb.allow_request(t0));
  cb.record_failure(t0);
  cb.record_failure(t0);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  cb.record_failure(t0);
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(cb.allow_request(t0 + sec(5)));
  EXPECT_EQ(cb.times_opened(), 1);
}

TEST(CircuitBreakerTest, SuccessResetsFailureCount) {
  CircuitBreaker cb({3, sec(10), 1});
  cb.record_failure(sec(0));
  cb.record_failure(sec(0));
  cb.record_success(sec(0));
  cb.record_failure(sec(0));
  cb.record_failure(sec(0));
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
  cb.record_failure(sec(0));
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
}

TEST(CircuitBreakerTest, HalfOpenAfterInterval) {
  CircuitBreaker cb({1, sec(10), 1});
  cb.record_failure(sec(0));
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(cb.allow_request(sec(9)));
  EXPECT_TRUE(cb.allow_request(sec(10)));  // exactly the interval
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, HalfOpenSuccessCloses) {
  CircuitBreaker cb({1, sec(10), 2});
  cb.record_failure(sec(0));
  ASSERT_TRUE(cb.allow_request(sec(10)));
  cb.record_success(sec(10));
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kHalfOpen);  // needs 2
  cb.record_success(sec(11));
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenFailureReopens) {
  CircuitBreaker cb({1, sec(10), 1});
  cb.record_failure(sec(0));
  ASSERT_TRUE(cb.allow_request(sec(10)));
  cb.record_failure(sec(10));
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(cb.allow_request(sec(19)));
  EXPECT_TRUE(cb.allow_request(sec(20)));
  EXPECT_EQ(cb.times_opened(), 2);
}

TEST(CircuitBreakerTest, ToStringNames) {
  EXPECT_STREQ(to_string(CircuitBreaker::State::kClosed), "closed");
  EXPECT_STREQ(to_string(CircuitBreaker::State::kOpen), "open");
  EXPECT_STREQ(to_string(CircuitBreaker::State::kHalfOpen), "half-open");
}

// Property sweep: for any threshold T, exactly T consecutive failures trip
// the breaker, and fewer never do.
class BreakerThresholdTest : public ::testing::TestWithParam<int> {};

TEST_P(BreakerThresholdTest, ExactlyThresholdFailuresTrip) {
  const int threshold = GetParam();
  CircuitBreaker cb({threshold, sec(1), 1});
  for (int i = 0; i < threshold - 1; ++i) {
    cb.record_failure(sec(0));
    EXPECT_EQ(cb.state(), CircuitBreaker::State::kClosed) << i;
  }
  cb.record_failure(sec(0));
  EXPECT_EQ(cb.state(), CircuitBreaker::State::kOpen);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, BreakerThresholdTest,
                         ::testing::Values(1, 2, 3, 5, 10, 100));

// ---------------------------------------------------------------- bulkhead

TEST(BulkheadTest, LimitsConcurrency) {
  Bulkhead bh(2);
  EXPECT_TRUE(bh.enabled());
  EXPECT_TRUE(bh.try_acquire());
  EXPECT_TRUE(bh.try_acquire());
  EXPECT_FALSE(bh.try_acquire());
  EXPECT_EQ(bh.in_flight(), 2);
  EXPECT_EQ(bh.rejected(), 1u);
  bh.release();
  EXPECT_TRUE(bh.try_acquire());
}

TEST(BulkheadTest, UnboundedWhenDisabled) {
  Bulkhead bh(0);
  EXPECT_FALSE(bh.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bh.try_acquire());
}

TEST(BulkheadTest, ReleaseNeverUnderflows) {
  Bulkhead bh(1);
  bh.release();
  EXPECT_EQ(bh.in_flight(), 0);
  EXPECT_TRUE(bh.try_acquire());
}

TEST(BulkheadPermitTest, RaiiReleases) {
  Bulkhead bh(1);
  {
    BulkheadPermit permit(&bh);
    EXPECT_TRUE(permit.acquired());
    EXPECT_EQ(bh.in_flight(), 1);
    BulkheadPermit second(&bh);
    EXPECT_FALSE(second.acquired());
  }
  EXPECT_EQ(bh.in_flight(), 0);
}

TEST(BulkheadPermitTest, NullAndDisabledAlwaysAcquire) {
  BulkheadPermit null_permit(nullptr);
  EXPECT_TRUE(null_permit.acquired());
  Bulkhead disabled(0);
  BulkheadPermit permit(&disabled);
  EXPECT_TRUE(permit.acquired());
}

// ------------------------------------------------------------------ policy

TEST(CallPolicyTest, NaiveHasNoPatterns) {
  const CallPolicy p = CallPolicy::naive();
  EXPECT_FALSE(p.has_timeout());
  EXPECT_FALSE(p.has_retries());
  EXPECT_FALSE(p.has_circuit_breaker());
  EXPECT_FALSE(p.has_bulkhead());
  EXPECT_FALSE(p.fallback.has_value());
}

TEST(CallPolicyTest, ResilientHasAllPatterns) {
  const CallPolicy p = CallPolicy::resilient();
  EXPECT_TRUE(p.has_timeout());
  EXPECT_TRUE(p.has_retries());
  EXPECT_TRUE(p.has_circuit_breaker());
  EXPECT_TRUE(p.has_bulkhead());
  EXPECT_TRUE(p.fallback.has_value());
}

}  // namespace
}  // namespace gremlin::resilience
