// Tests for flow-trace reconstruction: span pairing, parent/child nesting,
// failure chains, and end-to-end traces built from simulator logs.
#include <gtest/gtest.h>

#include "control/recipe.h"
#include "trace/trace.h"

namespace gremlin::trace {
namespace {

using logstore::FaultKind;
using logstore::LogRecord;
using logstore::MessageKind;

LogRecord rec(int64_t ts_ms, const std::string& id, const std::string& src,
              const std::string& dst, MessageKind kind, int status = 200) {
  LogRecord r;
  r.timestamp = msec(ts_ms);
  r.request_id = id;
  r.src = src;
  r.dst = dst;
  r.kind = kind;
  r.status = status;
  r.uri = "/";
  return r;
}

TEST(TraceTest, PairsRequestWithResponse) {
  logstore::RecordList records = {
      rec(0, "t", "user", "a", MessageKind::kRequest),
      rec(10, "t", "user", "a", MessageKind::kResponse, 200),
  };
  const FlowTrace t = build_trace(records, "t");
  ASSERT_EQ(t.spans.size(), 1u);
  EXPECT_EQ(t.spans[0].src, "user");
  EXPECT_EQ(t.spans[0].dst, "a");
  EXPECT_EQ(t.spans[0].duration(), msec(10));
  EXPECT_EQ(t.spans[0].status, 200);
  EXPECT_FALSE(t.spans[0].failed());
  EXPECT_EQ(t.roots, (std::vector<size_t>{0}));
}

TEST(TraceTest, NestsByTimeContainment) {
  logstore::RecordList records = {
      rec(0, "t", "user", "a", MessageKind::kRequest),
      rec(2, "t", "a", "b", MessageKind::kRequest),
      rec(4, "t", "b", "c", MessageKind::kRequest),
      rec(6, "t", "b", "c", MessageKind::kResponse),
      rec(8, "t", "a", "b", MessageKind::kResponse),
      rec(10, "t", "user", "a", MessageKind::kResponse),
  };
  const FlowTrace t = build_trace(records, "t");
  ASSERT_EQ(t.spans.size(), 3u);
  EXPECT_EQ(t.roots.size(), 1u);
  const Span& root = t.spans[t.roots[0]];
  EXPECT_EQ(root.dst, "a");
  ASSERT_EQ(root.children.size(), 1u);
  const Span& mid = t.spans[root.children[0]];
  EXPECT_EQ(mid.dst, "b");
  ASSERT_EQ(mid.children.size(), 1u);
  EXPECT_EQ(t.spans[mid.children[0]].dst, "c");
  EXPECT_EQ(t.total_duration(), msec(10));
}

TEST(TraceTest, RetriesBecomeSiblingSpans) {
  logstore::RecordList records = {
      rec(0, "t", "user", "a", MessageKind::kRequest),
      rec(1, "t", "a", "b", MessageKind::kRequest),
      rec(2, "t", "a", "b", MessageKind::kResponse, 503),
      rec(3, "t", "a", "b", MessageKind::kRequest),   // retry
      rec(4, "t", "a", "b", MessageKind::kResponse, 200),
      rec(5, "t", "user", "a", MessageKind::kResponse, 200),
  };
  const FlowTrace t = build_trace(records, "t");
  ASSERT_EQ(t.spans.size(), 3u);
  const Span& root = t.spans[t.roots[0]];
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(t.spans[root.children[0]].status, 503);
  EXPECT_EQ(t.spans[root.children[1]].status, 200);
  EXPECT_EQ(t.failed_spans(), 1u);
}

TEST(TraceTest, UnansweredSpanIsFailed) {
  logstore::RecordList records = {
      rec(0, "t", "user", "a", MessageKind::kRequest),
  };
  const FlowTrace t = build_trace(records, "t");
  ASSERT_EQ(t.spans.size(), 1u);
  EXPECT_TRUE(t.spans[0].failed());
  EXPECT_EQ(t.spans[0].duration(), kDurationZero);
}

TEST(TraceTest, FailureChainPointsAtOrigin) {
  // user->a ok request, a->b fails, b->c fails (the origin).
  logstore::RecordList records = {
      rec(0, "t", "user", "a", MessageKind::kRequest),
      rec(1, "t", "a", "b", MessageKind::kRequest),
      rec(2, "t", "b", "c", MessageKind::kRequest),
      rec(3, "t", "b", "c", MessageKind::kResponse, 0),    // reset at origin
      rec(4, "t", "a", "b", MessageKind::kResponse, 500),  // propagates
      rec(5, "t", "user", "a", MessageKind::kResponse, 500),
  };
  const FlowTrace t = build_trace(records, "t");
  const auto chain = t.failure_chain();
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(t.spans[chain.front()].dst, "a");  // root of the chain
  EXPECT_EQ(t.spans[chain.back()].dst, "c");   // deepest failure (origin)
}

TEST(TraceTest, FailureChainEmptyWhenHealthy) {
  logstore::RecordList records = {
      rec(0, "t", "user", "a", MessageKind::kRequest),
      rec(1, "t", "user", "a", MessageKind::kResponse, 200),
  };
  EXPECT_TRUE(build_trace(records, "t").failure_chain().empty());
}

TEST(TraceTest, BuildTracesSplitsByRequestId) {
  logstore::RecordList records = {
      rec(0, "t1", "user", "a", MessageKind::kRequest),
      rec(1, "t2", "user", "a", MessageKind::kRequest),
      rec(2, "t1", "user", "a", MessageKind::kResponse),
      rec(3, "t2", "user", "a", MessageKind::kResponse),
  };
  const auto traces = build_traces(records);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].request_id, "t1");
  EXPECT_EQ(traces[1].request_id, "t2");
  EXPECT_EQ(traces[0].spans.size(), 1u);
  EXPECT_EQ(traces[1].spans.size(), 1u);
}

TEST(TraceTest, FaultAnnotationsCarried) {
  LogRecord req = rec(0, "t", "a", "b", MessageKind::kRequest);
  req.fault = FaultKind::kDelay;
  req.rule_id = "delay-7";
  req.injected_delay = msec(100);
  LogRecord resp = rec(105, "t", "a", "b", MessageKind::kResponse, 200);
  resp.fault = FaultKind::kDelay;
  resp.rule_id = "delay-7";
  resp.injected_delay = msec(100);
  const FlowTrace t = build_trace({req, resp}, "t");
  ASSERT_EQ(t.spans.size(), 1u);
  EXPECT_EQ(t.spans[0].fault, FaultKind::kDelay);
  EXPECT_EQ(t.spans[0].rule_id, "delay-7");
  EXPECT_EQ(t.spans[0].injected_delay, msec(100));
}

TEST(TraceTest, FormatTreeRendersEveryEdge) {
  logstore::RecordList records = {
      rec(0, "t", "user", "a", MessageKind::kRequest),
      rec(2, "t", "a", "b", MessageKind::kRequest),
      rec(8, "t", "a", "b", MessageKind::kResponse, 503),
      rec(10, "t", "user", "a", MessageKind::kResponse, 500),
  };
  const std::string tree = build_trace(records, "t").format_tree();
  EXPECT_NE(tree.find("user -> a"), std::string::npos);
  EXPECT_NE(tree.find("a -> b"), std::string::npos);
  EXPECT_NE(tree.find("503"), std::string::npos);
  // Both spans failed: the 503 on a->b and the propagated 500 on user->a.
  EXPECT_NE(tree.find("2 failed"), std::string::npos);
}

TEST(TraceTest, EndToEndFromSimulatorLogs) {
  // Build a 3-hop chain in the simulator, crash the leaf, and reconstruct
  // the cascade from the collected logs.
  sim::Simulation sim;
  sim::ServiceConfig c;
  c.name = "c";
  sim.add_service(c);
  sim::ServiceConfig b;
  b.name = "b";
  b.dependencies = {"c"};
  sim.add_service(b);
  sim::ServiceConfig a;
  a.name = "a";
  a.dependencies = {"b"};
  sim.add_service(a);
  topology::AppGraph graph;
  graph.add_edge("user", "a");
  graph.add_edge("a", "b");
  graph.add_edge("b", "c");

  control::TestSession session(&sim, graph);
  ASSERT_TRUE(session.apply(control::FailureSpec::crash("c")).ok());
  session.run_load("user", "a", 1);
  ASSERT_TRUE(session.collect().ok());

  const FlowTrace t = build_trace(sim.log_store().all(), "test-0");
  ASSERT_EQ(t.spans.size(), 3u);
  const auto chain = t.failure_chain();
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(t.spans[chain.back()].dst, "c");
  EXPECT_EQ(t.spans[chain.back()].fault, FaultKind::kAbort);
  EXPECT_EQ(t.spans[chain.back()].status, 0);  // TCP reset at the origin
}

}  // namespace
}  // namespace gremlin::trace
