// Tests for the seeded mega-topology generators (AppGraph::tiered,
// AppGraph::random_dag) and their AppSpec registry forms: seed determinism
// pinned via fingerprint(), structural invariants (tier/degree bounds,
// gateway wiring), and acyclicity by construction.
#include <gtest/gtest.h>

#include <string>

#include "campaign/app_spec.h"
#include "topology/graph.h"

namespace gremlin::topology {
namespace {

TEST(MegaTopologyTest, TieredShapeAndCounts) {
  const AppGraph g = AppGraph::tiered(4, 10, /*seed=*/7);
  // 4 tiers x 10 wide + the gateway.
  EXPECT_EQ(g.service_count(), 41u);
  EXPECT_EQ(g.entry_points(), std::vector<std::string>{"gw"});
  // The gateway fans out to the full first tier.
  for (int w = 0; w < 10; ++w) {
    EXPECT_TRUE(g.has_edge("gw", "t0_w" + std::to_string(w)));
  }
  // Every non-terminal service calls exactly fan_out distinct services in
  // the next tier (default fan_out = 3, width 10 > fan_out).
  for (int tier = 0; tier + 1 < 4; ++tier) {
    for (int w = 0; w < 10; ++w) {
      const auto deps = g.dependencies("t" + std::to_string(tier) + "_w" +
                                       std::to_string(w));
      EXPECT_EQ(deps.size(), 3u);
      for (const auto& dep : deps) {
        EXPECT_EQ(dep.rfind("t" + std::to_string(tier + 1) + "_", 0), 0u)
            << dep << " is not in tier " << tier + 1;
      }
    }
  }
  // Terminal tier services are leaves.
  for (int w = 0; w < 10; ++w) {
    EXPECT_TRUE(g.dependencies("t3_w" + std::to_string(w)).empty());
  }
}

TEST(MegaTopologyTest, TieredFanOutClampsToWidth) {
  const AppGraph g = AppGraph::tiered(2, 2, /*seed=*/1, /*fan_out=*/5);
  EXPECT_EQ(g.dependencies("t0_w0").size(), 2u);
  EXPECT_EQ(g.dependencies("t0_w1").size(), 2u);
}

TEST(MegaTopologyTest, TieredSeedDeterminism) {
  const uint64_t fp = AppGraph::tiered(6, 20, 42).fingerprint();
  EXPECT_EQ(fp, AppGraph::tiered(6, 20, 42).fingerprint());
  EXPECT_NE(fp, AppGraph::tiered(6, 20, 43).fingerprint());
  EXPECT_NE(fp, AppGraph::tiered(6, 21, 42).fingerprint());
  EXPECT_NE(fp, AppGraph::tiered(7, 20, 42).fingerprint());
}

TEST(MegaTopologyTest, TieredIsAcyclicAt500Services) {
  const AppGraph g = AppGraph::tiered(10, 50, /*seed=*/3);
  EXPECT_EQ(g.service_count(), 501u);
  EXPECT_TRUE(g.validate_acyclic().ok());
}

TEST(MegaTopologyTest, RandomDagConnectivityAndEntry) {
  const AppGraph g = AppGraph::random_dag(200, /*avg_degree=*/3,
                                          /*seed=*/11);
  EXPECT_EQ(g.service_count(), 200u);
  EXPECT_TRUE(g.validate_acyclic().ok());
  // Every node but n0 has at least one caller, so n0 is the only entry.
  EXPECT_EQ(g.entry_points(), std::vector<std::string>{"n0"});
  for (int i = 1; i < 200; ++i) {
    EXPECT_FALSE(g.dependents("n" + std::to_string(i)).empty());
  }
}

TEST(MegaTopologyTest, RandomDagEdgesPointForward) {
  const AppGraph g = AppGraph::random_dag(100, 4, /*seed=*/5);
  for (const auto& edge : g.edges()) {
    const int src = std::stoi(edge.src.substr(1));
    const int dst = std::stoi(edge.dst.substr(1));
    EXPECT_LT(src, dst) << edge.src << " -> " << edge.dst;
  }
}

TEST(MegaTopologyTest, RandomDagSeedDeterminism) {
  const uint64_t fp = AppGraph::random_dag(300, 3, 9).fingerprint();
  EXPECT_EQ(fp, AppGraph::random_dag(300, 3, 9).fingerprint());
  EXPECT_NE(fp, AppGraph::random_dag(300, 3, 10).fingerprint());
}

TEST(MegaTopologyTest, FingerprintReflectsStructureNotInsertionOrder) {
  AppGraph a;
  a.add_edge("x", "y");
  a.add_edge("x", "z");
  AppGraph b;
  b.add_edge("x", "z");
  b.add_edge("x", "y");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.add_edge("y", "z");
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(MegaAppSpecTest, MegaSpecBuildsEveryService) {
  const campaign::AppSpec spec = campaign::AppSpec::mega(3, 5, 42);
  EXPECT_EQ(spec.name, "mega:3x5");
  sim::Simulation sim;
  const AppGraph graph = spec.instantiate(&sim);
  EXPECT_EQ(graph.service_count(), 16u);
  for (const auto& name : graph.services()) {
    EXPECT_NE(sim.find_service(name), nullptr) << name;
  }
}

TEST(MegaAppSpecTest, NamedParsesMegaForms) {
  auto mega = campaign::AppSpec::named("mega:4x8");
  ASSERT_TRUE(mega.ok());
  EXPECT_EQ(mega->probe_graph().service_count(), 33u);

  auto dag = campaign::AppSpec::named("megadag:120");
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->probe_graph().service_count(), 120u);

  // Same registry string twice → identical topology (the campaign
  // determinism contract extends to the parameterized forms).
  auto again = campaign::AppSpec::named("mega:4x8");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(mega->probe_graph().fingerprint(),
            again->probe_graph().fingerprint());
}

TEST(MegaAppSpecTest, NamedRejectsMalformedMegaForms) {
  EXPECT_FALSE(campaign::AppSpec::named("mega:").ok());
  EXPECT_FALSE(campaign::AppSpec::named("mega:10").ok());
  EXPECT_FALSE(campaign::AppSpec::named("mega:x5").ok());
  EXPECT_FALSE(campaign::AppSpec::named("mega:10x").ok());
  EXPECT_FALSE(campaign::AppSpec::named("mega:0x5").ok());
  EXPECT_FALSE(campaign::AppSpec::named("mega:3x-2").ok());
  EXPECT_FALSE(campaign::AppSpec::named("megadag:").ok());
  EXPECT_FALSE(campaign::AppSpec::named("megadag:abc").ok());
}

}  // namespace
}  // namespace gremlin::topology
