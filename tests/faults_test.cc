// Unit tests for the data-plane core: fault-rule validation and JSON
// round-trips, and the rule engine's matching semantics (ordering,
// patterns, probability, bounded match counts, Table 2 primitives).
#include <gtest/gtest.h>

#include "faults/rule_engine.h"

namespace gremlin::faults {
namespace {

MessageView request_view(std::string_view src, std::string_view dst,
                         std::string_view id) {
  MessageView v;
  v.kind = MessageKind::kRequest;
  v.src = src;
  v.dst = dst;
  v.request_id = id;
  v.method = "GET";
  v.uri = "/";
  return v;
}

MessageView response_view(std::string_view src, std::string_view dst,
                          std::string_view id, int status) {
  MessageView v = request_view(src, dst, id);
  v.kind = MessageKind::kResponse;
  v.status = status;
  return v;
}

// ------------------------------------------------------------- validation

TEST(FaultRuleTest, ValidRulesPass) {
  EXPECT_TRUE(FaultRule::abort_rule("a", "b", 503).validate().ok());
  EXPECT_TRUE(FaultRule::abort_rule("a", "b", kTcpReset).validate().ok());
  EXPECT_TRUE(FaultRule::delay_rule("a", "b", msec(100)).validate().ok());
  EXPECT_TRUE(FaultRule::modify_rule("a", "b", "key", "badkey")
                  .validate().ok());
}

TEST(FaultRuleTest, RejectsBadParameters) {
  FaultRule r = FaultRule::abort_rule("a", "b", 503);
  r.source = "";
  EXPECT_FALSE(r.validate().ok());

  r = FaultRule::abort_rule("a", "b", 503);
  r.probability = 1.5;
  EXPECT_FALSE(r.validate().ok());
  r.probability = -0.1;
  EXPECT_FALSE(r.validate().ok());

  r = FaultRule::abort_rule("a", "b", 42);  // not an HTTP status, not -1
  EXPECT_FALSE(r.validate().ok());

  r = FaultRule::delay_rule("a", "b", msec(100));
  r.delay_interval = kDurationZero;
  EXPECT_FALSE(r.validate().ok());

  r = FaultRule::modify_rule("a", "b", "key", "badkey");
  r.body_pattern.clear();
  EXPECT_FALSE(r.validate().ok());

  r = FaultRule::abort_rule("a", "b", 503);
  r.type = FaultKind::kNone;
  EXPECT_FALSE(r.validate().ok());
}

TEST(FaultRuleTest, JsonRoundTrip) {
  FaultRule r = FaultRule::delay_rule("serviceA", "serviceB", msec(250),
                                      "test-*", 0.75);
  r.on = MessageKind::kResponse;
  r.max_matches = 100;
  auto parsed = FaultRule::from_json(r.to_json());
  ASSERT_TRUE(parsed.ok());
  const FaultRule& p = parsed.value();
  EXPECT_EQ(p.id, r.id);
  EXPECT_EQ(p.source, "serviceA");
  EXPECT_EQ(p.destination, "serviceB");
  EXPECT_EQ(p.type, FaultKind::kDelay);
  EXPECT_EQ(p.on, MessageKind::kResponse);
  EXPECT_EQ(p.delay_interval, msec(250));
  EXPECT_DOUBLE_EQ(p.probability, 0.75);
  EXPECT_EQ(p.max_matches, 100u);
}

TEST(FaultRuleTest, FromJsonDefaults) {
  Json j = Json::object();
  j["id"] = "r1";
  j["source"] = "a";
  j["destination"] = "b";
  j["type"] = "abort";
  auto parsed = FaultRule::from_json(j);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->pattern, "*");
  EXPECT_DOUBLE_EQ(parsed->probability, 1.0);
  EXPECT_EQ(parsed->abort_code, 503);
  EXPECT_EQ(parsed->on, MessageKind::kRequest);
  EXPECT_EQ(parsed->max_matches, kUnlimitedMatches);
}

TEST(FaultRuleTest, FromJsonRejectsUnknownKinds) {
  Json j = Json::object();
  j["id"] = "r1";
  j["source"] = "a";
  j["destination"] = "b";
  j["type"] = "explode";
  EXPECT_FALSE(FaultRule::from_json(j).ok());
  j["type"] = "abort";
  j["on"] = "diagonal";
  EXPECT_FALSE(FaultRule::from_json(j).ok());
}

// ------------------------------------------------------------ rule engine

TEST(RuleEngineTest, AbortMatchesEdgeAndPattern) {
  RuleEngine engine;
  ASSERT_TRUE(
      engine.add_rule(FaultRule::abort_rule("a", "b", 503, "test-*")).ok());

  auto d = engine.evaluate(request_view("a", "b", "test-1"));
  EXPECT_EQ(d.action, FaultKind::kAbort);
  EXPECT_EQ(d.abort_code, 503);

  EXPECT_TRUE(engine.evaluate(request_view("a", "c", "test-1")).none());
  EXPECT_TRUE(engine.evaluate(request_view("x", "b", "test-1")).none());
  EXPECT_TRUE(engine.evaluate(request_view("a", "b", "prod-1")).none());
  // Response side not covered by an On=request rule.
  EXPECT_TRUE(engine.evaluate(response_view("a", "b", "test-1", 200)).none());
}

TEST(RuleEngineTest, WildcardSourceMatchesAnyCaller) {
  RuleEngine engine;
  ASSERT_TRUE(engine.add_rule(FaultRule::abort_rule("*", "b", 503)).ok());
  EXPECT_EQ(engine.evaluate(request_view("a", "b", "x")).action,
            FaultKind::kAbort);
  EXPECT_EQ(engine.evaluate(request_view("z", "b", "x")).action,
            FaultKind::kAbort);
  EXPECT_TRUE(engine.evaluate(request_view("a", "c", "x")).none());
}

TEST(RuleEngineTest, FirstMatchWins) {
  RuleEngine engine;
  FaultRule abort = FaultRule::abort_rule("a", "b", 503);
  FaultRule delay = FaultRule::delay_rule("a", "b", msec(50));
  ASSERT_TRUE(engine.add_rule(abort).ok());
  ASSERT_TRUE(engine.add_rule(delay).ok());
  const auto d = engine.evaluate(request_view("a", "b", "any"));
  EXPECT_EQ(d.action, FaultKind::kAbort);
  EXPECT_EQ(d.rule_id, abort.id);
}

TEST(RuleEngineTest, DuplicateIdRejected) {
  RuleEngine engine;
  FaultRule r = FaultRule::abort_rule("a", "b", 503);
  ASSERT_TRUE(engine.add_rule(r).ok());
  EXPECT_FALSE(engine.add_rule(r).ok());
}

TEST(RuleEngineTest, RemoveAndClear) {
  RuleEngine engine;
  FaultRule r = FaultRule::abort_rule("a", "b", 503);
  ASSERT_TRUE(engine.add_rule(r).ok());
  EXPECT_EQ(engine.rule_count(), 1u);
  EXPECT_TRUE(engine.remove_rule(r.id));
  EXPECT_FALSE(engine.remove_rule(r.id));
  EXPECT_EQ(engine.rule_count(), 0u);
  ASSERT_TRUE(engine.add_rule(r).ok());
  engine.clear();
  EXPECT_EQ(engine.rule_count(), 0u);
  EXPECT_EQ(engine.total_matches(), 0u);
}

TEST(RuleEngineTest, BoundedMatchesExhaust) {
  RuleEngine engine;
  FaultRule r = FaultRule::abort_rule("a", "b", 503);
  r.max_matches = 3;
  ASSERT_TRUE(engine.add_rule(r).ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(engine.evaluate(request_view("a", "b", "x")).action,
              FaultKind::kAbort);
  }
  EXPECT_TRUE(engine.evaluate(request_view("a", "b", "x")).none());
  EXPECT_EQ(engine.total_matches(), 3u);
}

TEST(RuleEngineTest, SequencedBoundedRules) {
  // The Figure 6 workload: abort the first 100 matching requests, then
  // delay the next 100, then pass everything through.
  RuleEngine engine;
  FaultRule abort = FaultRule::abort_rule("wp", "es", 503);
  abort.max_matches = 100;
  FaultRule delay = FaultRule::delay_rule("wp", "es", sec(3));
  delay.max_matches = 100;
  ASSERT_TRUE(engine.add_rule(abort).ok());
  ASSERT_TRUE(engine.add_rule(delay).ok());

  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(engine.evaluate(request_view("wp", "es", "x")).action,
              FaultKind::kAbort) << i;
  }
  for (int i = 0; i < 100; ++i) {
    const auto d = engine.evaluate(request_view("wp", "es", "x"));
    EXPECT_EQ(d.action, FaultKind::kDelay) << i;
    EXPECT_EQ(d.delay, sec(3));
  }
  EXPECT_TRUE(engine.evaluate(request_view("wp", "es", "x")).none());
}

TEST(RuleEngineTest, ProbabilityDeclineFallsThrough) {
  // Overload shape: Abort(p=0.25) then Delay(p=1). The observed split
  // should be ~25/75 with zero unfaulted messages.
  RuleEngine engine(/*seed=*/7);
  ASSERT_TRUE(
      engine.add_rule(FaultRule::abort_rule("a", "b", 503, "*", 0.25)).ok());
  ASSERT_TRUE(
      engine.add_rule(FaultRule::delay_rule("a", "b", msec(100), "*", 1.0))
          .ok());
  int aborts = 0, delays = 0, none = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    switch (engine.evaluate(request_view("a", "b", "x")).action) {
      case FaultKind::kAbort: ++aborts; break;
      case FaultKind::kDelay: ++delays; break;
      default: ++none;
    }
  }
  EXPECT_EQ(none, 0);
  EXPECT_NEAR(static_cast<double>(aborts) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(delays) / n, 0.75, 0.02);
}

TEST(RuleEngineTest, ZeroProbabilityNeverFires) {
  RuleEngine engine;
  ASSERT_TRUE(
      engine.add_rule(FaultRule::abort_rule("a", "b", 503, "*", 0.0)).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(engine.evaluate(request_view("a", "b", "x")).none());
  }
}

TEST(RuleEngineTest, DeterministicAcrossRuns) {
  auto run = [] {
    RuleEngine engine(/*seed=*/42, "agent-1");
    (void)engine.add_rule(FaultRule::abort_rule("a", "b", 503, "*", 0.5));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!engine.evaluate(request_view("a", "b", "x")).none());
    }
    return fired;
  };
  EXPECT_EQ(run(), run());
}

TEST(RuleEngineTest, ResponseSideRule) {
  RuleEngine engine;
  FaultRule r = FaultRule::abort_rule("a", "b", 500);
  r.on = MessageKind::kResponse;
  ASSERT_TRUE(engine.add_rule(r).ok());
  EXPECT_TRUE(engine.evaluate(request_view("a", "b", "x")).none());
  EXPECT_EQ(engine.evaluate(response_view("a", "b", "x", 200)).action,
            FaultKind::kAbort);
}

TEST(RuleEngineTest, ModifyRewritesBody) {
  RuleEngine engine;
  ASSERT_TRUE(
      engine.add_rule(FaultRule::modify_rule("a", "b", "key", "badkey")).ok());
  auto d = engine.evaluate(request_view("a", "b", "x"));
  ASSERT_EQ(d.action, FaultKind::kModify);
  std::string body = "key=value&key=other";
  EXPECT_EQ(RuleEngine::apply_modify(d, &body), 2);
  EXPECT_EQ(body, "badkey=value&badkey=other");
}

TEST(RuleEngineTest, TcpResetDecision) {
  RuleEngine engine;
  ASSERT_TRUE(
      engine.add_rule(FaultRule::abort_rule("a", "b", kTcpReset)).ok());
  const auto d = engine.evaluate(request_view("a", "b", "x"));
  EXPECT_TRUE(d.is_tcp_reset());
}

TEST(RuleEngineTest, InvalidRuleRejectedByAddRules) {
  RuleEngine engine;
  FaultRule bad = FaultRule::abort_rule("a", "b", 503);
  bad.probability = 2.0;
  EXPECT_FALSE(engine.add_rules({FaultRule::abort_rule("a", "b", 503), bad})
                   .ok());
  EXPECT_EQ(engine.rule_count(), 1u);  // the valid one before the bad one
}

}  // namespace
}  // namespace gremlin::faults
