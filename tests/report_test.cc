// Tests for test-report generation: JSON structure, markdown rendering,
// and failure diagnoses extracted from traces.
#include <gtest/gtest.h>

#include "report/report.h"

namespace gremlin::report {
namespace {

using control::FailureSpec;
using control::TestSession;
using sim::ServiceConfig;
using sim::Simulation;

struct ReportFixture {
  Simulation sim;
  topology::AppGraph graph;
  std::unique_ptr<TestSession> session;

  ReportFixture() {
    ServiceConfig backend;
    backend.name = "backend";
    sim.add_service(backend);
    ServiceConfig frontend;
    frontend.name = "frontend";
    frontend.dependencies = {"backend"};
    sim.add_service(frontend);
    graph.add_edge("user", "frontend");
    graph.add_edge("frontend", "backend");
    session = std::make_unique<TestSession>(&sim, graph);
  }
};

TEST(ReportTest, HealthyRunPasses) {
  ReportFixture f;
  f.session->run_load("user", "frontend", 10);
  ASSERT_TRUE(f.session->collect().ok());
  f.session->check(f.session->checker().has_timeouts("frontend", sec(1)));

  const TestReport report = build_report(f.session.get(), "healthy run");
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.checks.size(), 1u);
  EXPECT_EQ(report.checks_passed, 1u);
  EXPECT_EQ(report.flows_observed, 10u);
  EXPECT_EQ(report.flows_failed, 0u);
  EXPECT_TRUE(report.diagnoses.empty());
}

TEST(ReportTest, FailedRunCarriesDiagnoses) {
  ReportFixture f;
  ASSERT_TRUE(f.session->apply(FailureSpec::crash("backend")).ok());
  f.session->run_load("user", "frontend", 10);
  ASSERT_TRUE(f.session->collect().ok());
  f.session->check(f.session->checker().has_circuit_breaker(
      "frontend", "backend", 5, sec(1), 1));

  const TestReport report =
      build_report(f.session.get(), "crash test", /*max_diagnoses=*/3);
  EXPECT_FALSE(report.passed());
  EXPECT_EQ(report.flows_failed, 10u);
  ASSERT_EQ(report.diagnoses.size(), 3u);  // capped
  const FailureDiagnosis& d = report.diagnoses[0];
  EXPECT_EQ(d.origin_edge, "frontend -> backend");
  EXPECT_NE(d.origin_fault.find("abort"), std::string::npos);
  EXPECT_NE(d.rendered.find("frontend -> backend"), std::string::npos);
}

TEST(ReportTest, JsonShape) {
  ReportFixture f;
  ASSERT_TRUE(f.session->apply(FailureSpec::crash("backend")).ok());
  f.session->run_load("user", "frontend", 5);
  ASSERT_TRUE(f.session->collect().ok());
  f.session->check(f.session->checker().has_timeouts("frontend", sec(1)));

  const Json j = build_report(f.session.get(), "json test").to_json();
  EXPECT_EQ(j["title"].as_string(), "json test");
  EXPECT_EQ(j["seed"].as_int(), 42);
  EXPECT_TRUE(j["checks"].is_array());
  EXPECT_EQ(j["checks"].size(), 1u);
  EXPECT_EQ(j["flows_observed"].as_int(), 5);
  EXPECT_EQ(j["flows_failed"].as_int(), 5);
  EXPECT_TRUE(j["diagnoses"].is_array());
  // The JSON must reparse cleanly.
  auto round = Json::parse(j.dump(2));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value(), j);
}

TEST(ReportTest, MarkdownRendersSections) {
  ReportFixture f;
  ASSERT_TRUE(f.session->apply(FailureSpec::crash("backend")).ok());
  // 20 requests: traffic continues past the 5th consecutive failure, so
  // the missing breaker genuinely fails its check.
  f.session->run_load("user", "frontend", 20);
  ASSERT_TRUE(f.session->collect().ok());
  f.session->check(f.session->checker().has_timeouts("frontend", sec(1)));
  f.session->check(f.session->checker().has_circuit_breaker(
      "frontend", "backend", 5, sec(1), 1));

  const std::string md =
      build_report(f.session.get(), "md test").to_markdown();
  EXPECT_NE(md.find("# Gremlin test report — md test"), std::string::npos);
  EXPECT_NE(md.find("**Result: FAIL**"), std::string::npos);
  EXPECT_NE(md.find("## Assertions"), std::string::npos);
  EXPECT_NE(md.find("## Failed flows"), std::string::npos);
  EXPECT_NE(md.find("HasCircuitBreaker"), std::string::npos);
  EXPECT_NE(md.find("failure originated at `frontend -> backend`"),
            std::string::npos);
}

}  // namespace
}  // namespace gremlin::report
