// Unit tests for the event-log store: record JSON round-trips, indexed
// queries, glob filtering, time ordering, thread-safe appends.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "logstore/store.h"

namespace gremlin::logstore {
namespace {

LogRecord make_record(int64_t ts_us, std::string id, std::string src,
                      std::string dst, MessageKind kind, int status = 200) {
  LogRecord r;
  r.timestamp = Duration(ts_us);
  r.request_id = std::move(id);
  r.src = std::move(src);
  r.dst = std::move(dst);
  r.kind = kind;
  r.status = status;
  r.method = "GET";
  r.uri = "/";
  return r;
}

TEST(LogRecordTest, JsonRoundTrip) {
  LogRecord r = make_record(1234, "test-1", "a", "b", MessageKind::kResponse,
                            503);
  r.instance = "a/0";
  r.fault = FaultKind::kDelay;
  r.rule_id = "rule-7";
  r.injected_delay = msec(100);
  r.latency = msec(105);

  auto parsed = LogRecord::from_json(r.to_json());
  ASSERT_TRUE(parsed.ok());
  const LogRecord& p = parsed.value();
  EXPECT_EQ(p.timestamp, r.timestamp);
  EXPECT_EQ(p.request_id, r.request_id);
  EXPECT_EQ(p.src, r.src);
  EXPECT_EQ(p.dst, r.dst);
  EXPECT_EQ(p.instance, r.instance);
  EXPECT_EQ(p.kind, r.kind);
  EXPECT_EQ(p.status, r.status);
  EXPECT_EQ(p.fault, r.fault);
  EXPECT_EQ(p.rule_id, r.rule_id);
  EXPECT_EQ(p.injected_delay, r.injected_delay);
  EXPECT_EQ(p.latency, r.latency);
}

TEST(LogRecordTest, FromJsonRejectsBadInput) {
  EXPECT_FALSE(LogRecord::from_json(Json(42)).ok());
  Json bad_kind = Json::object();
  bad_kind["kind"] = "sideways";
  EXPECT_FALSE(LogRecord::from_json(bad_kind).ok());
  Json bad_fault = Json::object();
  bad_fault["kind"] = "request";
  bad_fault["fault"] = "meltdown";
  EXPECT_FALSE(LogRecord::from_json(bad_fault).ok());
}

TEST(LogRecordTest, FailedPredicate) {
  EXPECT_TRUE(
      make_record(0, "i", "a", "b", MessageKind::kResponse, 503).failed());
  EXPECT_TRUE(
      make_record(0, "i", "a", "b", MessageKind::kResponse, 0).failed());
  EXPECT_FALSE(
      make_record(0, "i", "a", "b", MessageKind::kResponse, 200).failed());
  EXPECT_FALSE(
      make_record(0, "i", "a", "b", MessageKind::kResponse, 404).failed());
  EXPECT_FALSE(
      make_record(0, "i", "a", "b", MessageKind::kRequest, 0).failed());
}

TEST(LogStoreTest, EdgeQueryUsesFilters) {
  LogStore store;
  store.append(make_record(10, "test-1", "a", "b", MessageKind::kRequest));
  store.append(make_record(20, "test-1", "a", "b", MessageKind::kResponse));
  store.append(make_record(30, "test-2", "a", "c", MessageKind::kRequest));
  store.append(make_record(40, "prod-9", "a", "b", MessageKind::kRequest));

  EXPECT_EQ(store.get_requests("a", "b").size(), 2u);
  EXPECT_EQ(store.get_requests("a", "b", "test-*").size(), 1u);
  EXPECT_EQ(store.get_replies("a", "b").size(), 1u);
  EXPECT_EQ(store.get_requests("a", "c").size(), 1u);
  EXPECT_EQ(store.get_requests("x", "y").size(), 0u);
}

TEST(LogStoreTest, WildcardSrcAndDst) {
  LogStore store;
  store.append(make_record(1, "test-1", "a", "b", MessageKind::kRequest));
  store.append(make_record(2, "test-2", "c", "b", MessageKind::kRequest));
  store.append(make_record(3, "test-3", "a", "d", MessageKind::kRequest));

  Query q;
  q.dst = "b";
  EXPECT_EQ(store.query(q).size(), 2u);
  Query q2;
  q2.src = "a";
  EXPECT_EQ(store.query(q2).size(), 2u);
  Query q3;  // fully open
  EXPECT_EQ(store.query(q3).size(), 3u);
}

TEST(LogStoreTest, ResultsSortedByTime) {
  LogStore store;
  store.append(make_record(30, "test-3", "a", "b", MessageKind::kRequest));
  store.append(make_record(10, "test-1", "a", "b", MessageKind::kRequest));
  store.append(make_record(20, "test-2", "a", "b", MessageKind::kRequest));

  const auto records = store.get_requests("a", "b");
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].request_id, "test-1");
  EXPECT_EQ(records[1].request_id, "test-2");
  EXPECT_EQ(records[2].request_id, "test-3");
}

TEST(LogStoreTest, TimeWindowFilter) {
  LogStore store;
  for (int i = 0; i < 10; ++i) {
    store.append(make_record(i * 100, "test-" + std::to_string(i), "a", "b",
                             MessageKind::kRequest));
  }
  Query q;
  q.src = "a";
  q.dst = "b";
  q.min_time = Duration(200);
  q.max_time = Duration(500);
  EXPECT_EQ(store.query(q).size(), 4u);  // 200,300,400,500
}

TEST(LogStoreTest, AnyKindQueryMergesBoth) {
  LogStore store;
  store.append(make_record(1, "test-1", "a", "b", MessageKind::kRequest));
  store.append(make_record(2, "test-1", "a", "b", MessageKind::kResponse));
  Query q;
  q.src = "a";
  q.dst = "b";
  q.any_kind = true;
  EXPECT_EQ(store.query(q).size(), 2u);
}

TEST(LogStoreTest, ClearResetsEverything) {
  LogStore store;
  store.append(make_record(1, "test-1", "a", "b", MessageKind::kRequest));
  EXPECT_EQ(store.size(), 1u);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.get_requests("a", "b").empty());
}

TEST(LogStoreTest, JsonDumpRoundTrip) {
  LogStore store;
  store.append(make_record(1, "test-1", "a", "b", MessageKind::kRequest));
  store.append(
      make_record(2, "test-1", "a", "b", MessageKind::kResponse, 503));

  LogStore copy;
  ASSERT_TRUE(copy.load_json(store.to_json()).ok());
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.get_replies("a", "b")[0].status, 503);
}

TEST(LogStoreTest, LoadJsonRejectsNonArray) {
  LogStore store;
  EXPECT_FALSE(store.load_json(Json::object()).ok());
  EXPECT_FALSE(store.load_json(Json(1)).ok());
}

TEST(LogStoreTest, ExactIdLookupUsesIdIndex) {
  LogStore store;
  store.append(make_record(1, "test-1", "a", "b", MessageKind::kRequest));
  store.append(make_record(2, "test-2", "a", "b", MessageKind::kRequest));
  store.append(make_record(3, "test-1", "b", "c", MessageKind::kRequest));

  Query q;
  q.id_pattern = "test-1";  // literal: answered via the request-ID index
  auto hits = store.query(q);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].src, "a");
  EXPECT_EQ(hits[1].src, "b");

  // Literal ID combined with an edge filter narrows further.
  q.src = "b";
  q.dst = "c";
  EXPECT_EQ(store.query(q).size(), 1u);

  q = Query{};
  q.id_pattern = "test-9";
  EXPECT_TRUE(store.query(q).empty());
}

TEST(LogStoreTest, PrefixPatternUsesIdIndexRange) {
  LogStore store;
  store.append(make_record(3, "test-10", "a", "b", MessageKind::kRequest));
  store.append(make_record(1, "test-2", "a", "b", MessageKind::kRequest));
  store.append(make_record(2, "prod-1", "a", "b", MessageKind::kRequest));
  store.append(make_record(4, "test", "a", "b", MessageKind::kRequest));

  Query q;
  q.id_pattern = "test-*";
  auto hits = store.query(q);
  ASSERT_EQ(hits.size(), 2u);
  // Still time-sorted even though the range scan visits IDs in
  // lexicographic order ("test-10" before "test-2").
  EXPECT_EQ(hits[0].request_id, "test-2");
  EXPECT_EQ(hits[1].request_id, "test-10");

  q.id_pattern = "test*";
  EXPECT_EQ(store.query(q).size(), 3u);  // includes the bare "test"
}

TEST(LogStoreTest, NonPrefixGlobsStillMatch) {
  LogStore store;
  store.append(make_record(1, "test-1", "a", "b", MessageKind::kRequest));
  store.append(make_record(2, "prod-1", "a", "b", MessageKind::kRequest));

  Query q;
  q.id_pattern = "*-1";  // suffix glob: falls back to a scan
  EXPECT_EQ(store.query(q).size(), 2u);
  q.id_pattern = "t?st-1";
  EXPECT_EQ(store.query(q).size(), 1u);
  q.id_pattern = "te\\st-1";  // escape: not a literal for index purposes
  EXPECT_EQ(store.query(q).size(), 1u);
}

TEST(LogStoreTest, ClearResetsIdIndex) {
  LogStore store;
  store.append(make_record(1, "test-1", "a", "b", MessageKind::kRequest));
  store.clear();
  store.append(make_record(2, "test-1", "c", "d", MessageKind::kRequest));
  Query q;
  q.id_pattern = "test-1";
  auto hits = store.query(q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].src, "c");
}

TEST(GlobIndexHintTest, LiteralAndPrefixDetection) {
  EXPECT_TRUE(Glob("test-1").is_literal());
  EXPECT_FALSE(Glob("test-*").is_literal());
  EXPECT_FALSE(Glob("te?t").is_literal());
  EXPECT_FALSE(Glob("te\\st").is_literal());

  ASSERT_TRUE(Glob("test-*").literal_prefix().has_value());
  EXPECT_EQ(*Glob("test-*").literal_prefix(), "test-");
  EXPECT_EQ(*Glob("*").literal_prefix(), "");
  EXPECT_FALSE(Glob("test-1").literal_prefix().has_value());
  EXPECT_FALSE(Glob("te*st-*").literal_prefix().has_value());
  EXPECT_FALSE(Glob("te?t-*").literal_prefix().has_value());
  EXPECT_FALSE(Glob("te\\st-*").literal_prefix().has_value());
}

TEST(CallGraphTest, ExtractsEdgesAndDistinctPaths) {
  LogStore store;
  // Request 1 fans out a -> {b, c}; request 2 only reaches b; request 3
  // repeats request 1's shape exactly (must collapse into one signature).
  store.append(make_record(1, "test-1", "user", "a", MessageKind::kRequest));
  store.append(make_record(2, "test-1", "a", "b", MessageKind::kRequest));
  store.append(make_record(3, "test-1", "a", "c", MessageKind::kRequest));
  store.append(make_record(4, "test-2", "user", "a", MessageKind::kRequest));
  store.append(make_record(5, "test-2", "a", "b", MessageKind::kRequest));
  store.append(make_record(6, "test-3", "user", "a", MessageKind::kRequest));
  store.append(make_record(7, "test-3", "a", "b", MessageKind::kRequest));
  store.append(make_record(8, "test-3", "a", "c", MessageKind::kRequest));
  // Responses must not create edges of their own.
  store.append(
      make_record(9, "test-1", "a", "b", MessageKind::kResponse, 503));

  const CallGraph graph = store.call_graph();
  EXPECT_EQ(graph.requests, 3u);
  ASSERT_EQ(graph.edges.size(), 3u);
  EXPECT_TRUE(graph.observed("user", "a"));
  EXPECT_TRUE(graph.observed("a", "b"));
  EXPECT_TRUE(graph.observed("a", "c"));
  EXPECT_FALSE(graph.observed("b", "a"));

  ASSERT_EQ(graph.paths.size(), 2u);  // fan-out shape + b-only shape
  const CallGraph::EdgeSet fanout = {
      {"user", "a"}, {"a", "b"}, {"a", "c"}};
  const CallGraph::EdgeSet b_only = {{"user", "a"}, {"a", "b"}};
  EXPECT_NE(std::find(graph.paths.begin(), graph.paths.end(), fanout),
            graph.paths.end());
  EXPECT_NE(std::find(graph.paths.begin(), graph.paths.end(), b_only),
            graph.paths.end());
}

TEST(CallGraphTest, QueryFilterScopesTheGraph) {
  LogStore store;
  store.append(make_record(1, "test-1", "a", "b", MessageKind::kRequest));
  store.append(make_record(2, "prod-1", "a", "c", MessageKind::kRequest));

  Query q;
  q.id_pattern = "test-*";
  const CallGraph graph = store.call_graph(q);
  EXPECT_EQ(graph.requests, 1u);
  EXPECT_TRUE(graph.observed("a", "b"));
  EXPECT_FALSE(graph.observed("a", "c"));
}

TEST(CallGraphTest, EmptyStoreYieldsEmptyGraph) {
  LogStore store;
  const CallGraph graph = store.call_graph();
  EXPECT_EQ(graph.requests, 0u);
  EXPECT_TRUE(graph.edges.empty());
  EXPECT_TRUE(graph.paths.empty());
}

TEST(LogStoreTest, ConcurrentAppends) {
  LogStore store;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        store.append(make_record(i, "test-" + std::to_string(i),
                                 "src" + std::to_string(t), "dst",
                                 MessageKind::kRequest));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(store.get_requests("src0", "dst").size(),
            static_cast<size_t>(kPerThread));
}

}  // namespace
}  // namespace gremlin::logstore
