// Tests for the simulator's server-side concurrency model: FIFO queueing
// under saturation, slot release on response, and overload dynamics when
// Gremlin injects delays into a capacity-limited service.
#include <gtest/gtest.h>

#include "control/recipe.h"
#include "sim/simulation.h"

namespace gremlin::sim {
namespace {

TEST(ServerQueueTest, SerializesBeyondCapacity) {
  Simulation sim;
  ServiceConfig svc;
  svc.name = "svc";
  svc.processing_time = msec(10);
  svc.max_concurrent_requests = 1;
  sim.add_service(svc);

  std::vector<TimePoint> completions;
  for (int i = 0; i < 3; ++i) {
    sim.inject("user", "svc", SimRequest{.request_id = "t"},
               [&](const SimResponse&) { completions.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  // All injected at t=0; with one worker the service times are ~10ms apart.
  EXPECT_GE(completions[1] - completions[0], msec(10));
  EXPECT_GE(completions[2] - completions[1], msec(10));
  EXPECT_EQ(sim.find_service("svc")->instance(0).server_queue_peak(), 2u);
}

TEST(ServerQueueTest, UnlimitedByDefault) {
  Simulation sim;
  ServiceConfig svc;
  svc.name = "svc";
  svc.processing_time = msec(10);
  sim.add_service(svc);

  std::vector<TimePoint> completions;
  for (int i = 0; i < 5; ++i) {
    sim.inject("user", "svc", SimRequest{.request_id = "t"},
               [&](const SimResponse&) { completions.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 5u);
  // All process in parallel: identical completion times.
  for (const TimePoint t : completions) EXPECT_EQ(t, completions[0]);
  EXPECT_EQ(sim.find_service("svc")->instance(0).server_queue_peak(), 0u);
}

TEST(ServerQueueTest, SlotHeldAcrossDependencyCalls) {
  // A capacity-1 service whose handler awaits a slow dependency holds its
  // worker for the full request lifetime.
  Simulation sim;
  ServiceConfig dep;
  dep.name = "dep";
  dep.processing_time = msec(50);
  sim.add_service(dep);
  ServiceConfig svc;
  svc.name = "svc";
  svc.processing_time = msec(1);
  svc.max_concurrent_requests = 1;
  svc.dependencies = {"dep"};
  sim.add_service(svc);

  std::vector<TimePoint> completions;
  for (int i = 0; i < 2; ++i) {
    sim.inject("user", "svc", SimRequest{.request_id = "t"},
               [&](const SimResponse&) { completions.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  // Each request takes ~52ms of service time; the second waits for the
  // first's full lifetime.
  EXPECT_GE(completions[1] - completions[0], msec(50));
}

TEST(ServerQueueTest, InjectedDelayCausesQueueGrowth) {
  // The BBC scenario mechanism: Gremlin delays the database's upstream
  // calls; because the API tier has limited workers, its queue explodes
  // and user latency grows far beyond the injected delay itself.
  Simulation sim;
  ServiceConfig db;
  db.name = "db";
  db.processing_time = msec(5);
  sim.add_service(db);
  ServiceConfig api;
  api.name = "api";
  api.processing_time = msec(1);
  api.max_concurrent_requests = 2;
  api.dependencies = {"db"};
  sim.add_service(api);
  topology::AppGraph graph;
  graph.add_edge("user", "api");
  graph.add_edge("api", "db");

  control::TestSession session(&sim, graph);
  ASSERT_TRUE(
      session.apply(control::FailureSpec::delay_edge("api", "db", msec(200)))
          .ok());
  control::LoadOptions load;
  load.count = 20;
  load.gap = msec(20);  // arrival rate 50/s >> service rate 2/0.2s = 10/s
  const auto result = session.run_load("user", "api", load);

  // Later requests queue behind earlier ones: the last request's latency is
  // a multiple of the injected delay.
  EXPECT_GT(result.latencies.back(), msec(600));
  EXPECT_GT(sim.find_service("api")->instance(0).server_queue_peak(), 5u);
}

TEST(ServerQueueTest, QueueDrainsCompletely) {
  Simulation sim;
  ServiceConfig svc;
  svc.name = "svc";
  svc.processing_time = msec(2);
  svc.max_concurrent_requests = 1;
  sim.add_service(svc);
  size_t done = 0;
  for (int i = 0; i < 50; ++i) {
    sim.inject("user", "svc", SimRequest{.request_id = "t"},
               [&done](const SimResponse&) { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 50u);
  EXPECT_EQ(sim.find_service("svc")->instance(0).server_queue_depth(), 0u);
  EXPECT_EQ(sim.find_service("svc")->instance(0).server_in_flight(), 0);
}

}  // namespace
}  // namespace gremlin::sim
