// Tests for timed (crash-recovery) failure scenarios and the
// failure-containment check, across the simulated and real data planes.
#include <gtest/gtest.h>

#include "control/recipe.h"
#include "dsl/interp.h"
#include "httpserver/client.h"
#include "httpserver/server.h"
#include "proxy/control_api.h"

namespace gremlin::control {
namespace {

struct ChainApp {
  sim::Simulation sim;
  topology::AppGraph graph;

  explicit ChainApp(resilience::CallPolicy frontend_policy = {}) {
    sim::ServiceConfig backend;
    backend.name = "backend";
    sim.add_service(backend);
    sim::ServiceConfig frontend;
    frontend.name = "frontend";
    frontend.dependencies = {"backend"};
    frontend.default_policy = frontend_policy;
    sim.add_service(frontend);
    graph.add_edge("user", "frontend");
    graph.add_edge("frontend", "backend");
  }
};

TEST(CrashRecoveryTest, FaultHealsAfterDowntime) {
  ChainApp app;
  TestSession session(&app.sim, app.graph);
  // backend down for 1s of virtual time.
  ASSERT_TRUE(
      session.apply_for(FailureSpec::crash("backend"), sec(1)).ok());

  // 40 requests over 2s: the first half fail, the second half succeed.
  LoadOptions load;
  load.count = 40;
  load.gap = msec(50);
  const auto result = session.run_load("user", "frontend", load);
  size_t failed_early = 0, failed_late = 0;
  for (size_t i = 0; i < 40; ++i) {
    if (result.statuses[i] >= 500 || result.statuses[i] == 0) {
      (i < 20 ? failed_early : failed_late) += 1;
    }
  }
  EXPECT_EQ(failed_early, 20u);  // outage window
  EXPECT_EQ(failed_late, 0u);    // healed
}

TEST(CrashRecoveryTest, RulesRemovedFromAllAgents) {
  ChainApp app;
  TestSession session(&app.sim, app.graph);
  ASSERT_TRUE(
      session.apply_for(FailureSpec::crash("backend"), msec(100)).ok());
  EXPECT_EQ(app.sim.find_service("frontend")
                ->instance(0)
                .agent()
                ->engine()
                .rule_count(),
            1u);
  app.sim.run();  // the removal event fires
  EXPECT_EQ(app.sim.find_service("frontend")
                ->instance(0)
                .agent()
                ->engine()
                .rule_count(),
            0u);
}

TEST(CrashRecoveryTest, DslCommandDrivesTimedCrash) {
  sim::Simulation sim;
  dsl::Interpreter interp(&sim);
  auto outcome = interp.run_source(R"(
    graph { user -> a -> b }
    scenario "transient outage" {
      crash_recovery(b, downtime=500ms)
      load(client=user, target=a, count=40, gap=25ms)
      collect
    }
  )");
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  // Replies on a->b: failures only during the first 500ms.
  const auto replies = sim.log_store().get_replies("a", "b");
  ASSERT_FALSE(replies.empty());
  for (const auto& r : replies) {
    if (r.timestamp < msec(500)) {
      EXPECT_TRUE(r.failed()) << r.timestamp.count();
    } else if (r.timestamp > msec(600)) {
      EXPECT_FALSE(r.failed()) << r.timestamp.count();
    }
  }
}

// ----------------------------------------------------- failure containment

TEST(FailureContainedTest, NaiveAppEscapes) {
  ChainApp app;  // naive frontend: failures propagate
  TestSession session(&app.sim, app.graph);
  ASSERT_TRUE(session.apply(FailureSpec::crash("backend")).ok());
  session.run_load("user", "frontend", 10);
  ASSERT_TRUE(session.collect().ok());
  const auto result = session.checker().failure_contained("backend");
  EXPECT_FALSE(result.passed);
  EXPECT_NE(result.detail.find("escaped"), std::string::npos);
}

TEST(FailureContainedTest, FallbackContains) {
  resilience::CallPolicy policy;
  policy.fallback = resilience::Fallback{200, "cached"};
  ChainApp app(policy);
  TestSession session(&app.sim, app.graph);
  ASSERT_TRUE(session.apply(FailureSpec::crash("backend")).ok());
  session.run_load("user", "frontend", 10);
  ASSERT_TRUE(session.collect().ok());
  const auto result = session.checker().failure_contained("backend");
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(FailureContainedTest, NoOriginFailuresIsInconclusive) {
  ChainApp app;
  TestSession session(&app.sim, app.graph);
  session.run_load("user", "frontend", 5);
  ASSERT_TRUE(session.collect().ok());
  const auto result = session.checker().failure_contained("backend");
  EXPECT_FALSE(result.passed);
  EXPECT_NE(result.detail.find("cannot verify"), std::string::npos);
}

TEST(FailureContainedTest, DslCommand) {
  sim::Simulation sim;
  dsl::Interpreter interp(&sim);
  auto outcome = interp.run_source(R"(
    graph { user -> a -> b }
    scenario "containment" {
      crash(b)
      load(client=user, target=a, count=10)
      collect
      assert failure_contained(b)
    }
  )");
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  ASSERT_EQ(outcome->scenarios[0].checks.size(), 1u);
  EXPECT_FALSE(outcome->scenarios[0].checks[0].passed);  // naive app
}

// ------------------------------------------- remove-by-id on a real agent

TEST(RemoveRulesTest, RestDeleteById) {
  httpserver::HttpServer origin([](const httpmsg::Request&) {
    return httpmsg::make_response(200, "ok");
  });
  auto origin_port = origin.start();
  ASSERT_TRUE(origin_port.ok());
  proxy::GremlinAgentProxy agent("svc", "svc/0");
  proxy::Route route;
  route.destination = "dep";
  route.endpoints = {{"127.0.0.1", *origin_port}};
  agent.add_route(route);
  ASSERT_TRUE(agent.start().ok());
  proxy::ControlApiServer api(&agent);
  auto api_port = api.start();
  ASSERT_TRUE(api_port.ok());

  faults::FaultRule rule = faults::FaultRule::abort_rule("svc", "dep", 503);
  rule.id = "timed-rule";
  proxy::RemoteAgentHandle handle("127.0.0.1", *api_port, "svc/0");
  ASSERT_TRUE(handle.install_rules({rule}).ok());
  EXPECT_EQ(agent.engine().rule_count(), 1u);
  ASSERT_TRUE(handle.remove_rules({"timed-rule"}).ok());
  EXPECT_EQ(agent.engine().rule_count(), 0u);
  // Removing an unknown ID is a no-op, not an error.
  ASSERT_TRUE(handle.remove_rules({"ghost"}).ok());

  api.stop();
  agent.stop();
  origin.stop();
}

}  // namespace
}  // namespace gremlin::control
