// Tests for the arena allocator stack (common/arena.h): bump-pointer
// Arena block retention across reset, MemoryPool size-class recycling, and
// the std-compatible PoolAllocator / make_pooled glue the per-worker
// ExecutionContext builds on.
#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <set>
#include <vector>

namespace gremlin {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  std::set<void*> seen;
  for (size_t bytes : {1u, 8u, 24u, 64u, 1000u}) {
    void* p = arena.allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(std::max_align_t), 0u);
    EXPECT_TRUE(seen.insert(p).second);
    std::memset(p, 0xab, bytes);  // ASan/valgrind probe: the range is ours
  }
  EXPECT_GE(arena.bytes_allocated(), 1u + 8u + 24u + 64u + 1000u);
}

TEST(ArenaTest, ResetRetainsBlocks) {
  Arena arena;
  for (int i = 0; i < 100; ++i) (void)arena.allocate(1024);
  const size_t blocks = arena.block_count();
  const size_t reserved = arena.bytes_reserved();
  ASSERT_GT(blocks, 0u);

  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.block_count(), blocks);
  EXPECT_EQ(arena.bytes_reserved(), reserved);

  // The same workload replayed after reset needs no new blocks.
  for (int i = 0; i < 100; ++i) (void)arena.allocate(1024);
  EXPECT_EQ(arena.block_count(), blocks);
}

TEST(ArenaTest, OversizedAllocationGetsItsOwnBlock) {
  Arena arena;
  void* big = arena.allocate(1 << 20);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5a, 1 << 20);
}

TEST(MemoryPoolTest, RecyclesSameSizeClass) {
  MemoryPool pool;
  void* a = pool.allocate(48);
  pool.deallocate(a, 48);
  void* b = pool.allocate(48);
  EXPECT_EQ(a, b);  // LIFO free list hands the granule straight back
  EXPECT_EQ(pool.recycled(), 1u);
  pool.deallocate(b, 48);
}

TEST(MemoryPoolTest, DistinctClassesDoNotAlias) {
  MemoryPool pool;
  void* small = pool.allocate(16);
  void* large = pool.allocate(512);
  EXPECT_NE(small, large);
  pool.deallocate(small, 16);
  void* large2 = pool.allocate(512);
  EXPECT_NE(large2, small);  // freeing 16B must not satisfy a 512B request
  pool.deallocate(large, 512);
  pool.deallocate(large2, 512);
}

TEST(MemoryPoolTest, HugeAllocationsPassThrough) {
  MemoryPool pool;
  constexpr size_t kHuge = (1u << 20) + 1;
  void* p = pool.allocate(kHuge);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x11, kHuge);
  pool.deallocate(p, kHuge);  // operator delete, not the free lists
}

TEST(MemoryPoolTest, ResetDropsFreeListsWithTheArena) {
  MemoryPool pool;
  void* a = pool.allocate(64);
  pool.deallocate(a, 64);
  pool.reset();
  // The old granule's storage is reusable arena space again; allocating
  // after reset must not hand out a pointer from the stale free list view.
  void* b = pool.allocate(64);
  ASSERT_NE(b, nullptr);
  std::memset(b, 0x22, 64);
  pool.deallocate(b, 64);
}

TEST(PoolAllocatorTest, VectorRunsOnPool) {
  MemoryPool pool;
  {
    std::vector<int, PoolAllocator<int>> v{PoolAllocator<int>(&pool)};
    for (int i = 0; i < 1000; ++i) v.push_back(i);
    EXPECT_EQ(v[999], 999);
  }
  EXPECT_GT(pool.arena().bytes_allocated(), 0u);
}

TEST(PoolAllocatorTest, NullPoolFallsBackToHeap) {
  std::vector<int, PoolAllocator<int>> v;  // default: no pool
  v.assign(100, 7);
  EXPECT_EQ(v.back(), 7);
}

TEST(MakePooledTest, SharedPtrLifecycleRecyclesStorage) {
  MemoryPool pool;
  struct Payload {
    uint64_t a = 1;
    uint64_t b = 2;
  };
  void* first = nullptr;
  {
    auto p = make_pooled<Payload>(&pool);
    first = p.get();
    EXPECT_EQ(p->a, 1u);
  }
  // Same size class, freed handle: the next object reuses the granule.
  auto q = make_pooled<Payload>(&pool);
  EXPECT_EQ(static_cast<void*>(q.get()), first);
  EXPECT_GT(pool.recycled(), 0u);
}

TEST(MakePooledTest, WeakPtrKeepsControlBlockSafely) {
  MemoryPool pool;
  std::weak_ptr<int> weak;
  {
    auto p = make_pooled<int>(&pool, 42);
    weak = p;
    EXPECT_EQ(*weak.lock(), 42);
  }
  EXPECT_TRUE(weak.expired());  // control block released back to the pool
}

}  // namespace
}  // namespace gremlin
