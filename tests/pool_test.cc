// Tests for HTTP keep-alive connection pooling: connection reuse, stale
// connection recovery, pool caps, and the proxy's pooled upstream path.
#include <gtest/gtest.h>

#include "httpserver/client.h"
#include "httpserver/pool.h"
#include "httpserver/server.h"
#include "proxy/control_api.h"

namespace gremlin::httpserver {
namespace {

std::unique_ptr<HttpServer> echo_server(uint16_t* port) {
  auto server = std::make_unique<HttpServer>([](const httpmsg::Request& r) {
    return httpmsg::make_response(200, "echo:" + r.target);
  });
  auto started = server->start();
  EXPECT_TRUE(started.ok());
  *port = started.value_or(0);
  return server;
}

httpmsg::Request req(const std::string& target) {
  httpmsg::Request r;
  r.target = target;
  r.headers.set(httpmsg::kRequestIdHeader, "test-1");
  return r;
}

TEST(PooledClientTest, ReusesOneConnection) {
  uint16_t port = 0;
  auto server = echo_server(&port);
  PooledClient pool("127.0.0.1", port);
  for (int i = 0; i < 5; ++i) {
    auto result = pool.fetch(req("/r" + std::to_string(i)));
    ASSERT_FALSE(result.failed()) << i;
    EXPECT_EQ(result.response.body, "echo:/r" + std::to_string(i));
  }
  EXPECT_EQ(pool.connections_opened(), 1u);
  EXPECT_EQ(pool.reuses(), 4u);
  EXPECT_EQ(server->connections_accepted(), 1u);
  EXPECT_EQ(server->requests_served(), 5u);
  EXPECT_EQ(pool.idle_connections(), 1u);
}

TEST(PooledClientTest, RecoversFromServerRestart) {
  uint16_t port = 0;
  auto server = echo_server(&port);
  PooledClient pool("127.0.0.1", port);
  ASSERT_FALSE(pool.fetch(req("/a")).failed());
  // Restart the server on the same port: the pooled connection is stale.
  server->stop();
  auto server2 = std::make_unique<HttpServer>([](const httpmsg::Request&) {
    return httpmsg::make_response(200, "fresh");
  });
  ASSERT_TRUE(server2->start(port).ok());

  auto result = pool.fetch(req("/b"));
  ASSERT_FALSE(result.failed());
  EXPECT_EQ(result.response.body, "fresh");
  EXPECT_EQ(pool.connections_opened(), 2u);  // reconnected once
}

TEST(PooledClientTest, ConnectionCloseResponseNotReused) {
  uint16_t port = 0;
  auto server = std::make_unique<HttpServer>([](const httpmsg::Request&) {
    httpmsg::Response resp = httpmsg::make_response(200, "bye");
    resp.headers.set("Connection", "close");
    return resp;
  });
  auto started = server->start();
  ASSERT_TRUE(started.ok());
  port = *started;

  PooledClient pool("127.0.0.1", port);
  ASSERT_FALSE(pool.fetch(req("/1")).failed());
  ASSERT_FALSE(pool.fetch(req("/2")).failed());
  EXPECT_EQ(pool.connections_opened(), 2u);  // no reuse possible
  EXPECT_EQ(pool.idle_connections(), 0u);
}

TEST(PooledClientTest, ConnectFailureReported) {
  PooledClient pool("127.0.0.1", 1, 4, msec(300));
  auto result = pool.fetch(req("/x"));
  EXPECT_TRUE(result.connection_failed);
}

TEST(ProxyPoolingTest, ProxyReusesUpstreamConnections) {
  uint16_t origin_port = 0;
  auto origin = echo_server(&origin_port);

  proxy::GremlinAgentProxy agent("svc", "svc/0");
  proxy::Route route;
  route.destination = "backend";
  route.endpoints = {{"127.0.0.1", origin_port}};
  agent.add_route(route);
  ASSERT_TRUE(agent.start().ok());

  for (int i = 0; i < 6; ++i) {
    auto result = HttpClient::fetch("127.0.0.1", agent.route_port("backend"),
                                    req("/p" + std::to_string(i)));
    ASSERT_FALSE(result.failed()) << i;
  }
  EXPECT_EQ(agent.requests_proxied(), 6u);
  // The proxy multiplexed all six requests onto few upstream connections.
  EXPECT_LT(origin->connections_accepted(), 6u);
  agent.stop();
}

TEST(ProxyPoolingTest, StatsEndpoint) {
  uint16_t origin_port = 0;
  auto origin = echo_server(&origin_port);
  proxy::GremlinAgentProxy agent("svc", "svc/0");
  proxy::Route route;
  route.destination = "backend";
  route.endpoints = {{"127.0.0.1", origin_port}};
  agent.add_route(route);
  ASSERT_TRUE(agent.start().ok());
  ASSERT_TRUE(agent
                  .install_rules({faults::FaultRule::abort_rule(
                      "svc", "backend", 503, "nomatch-*")})
                  .ok());
  for (int i = 0; i < 3; ++i) {
    (void)HttpClient::fetch("127.0.0.1", agent.route_port("backend"),
                            req("/s"));
  }
  proxy::ControlApiServer api(&agent);
  auto api_port = api.start();
  ASSERT_TRUE(api_port.ok());
  auto stats = HttpClient::fetch("127.0.0.1", *api_port,
                                 req("/gremlin/v1/stats"));
  ASSERT_FALSE(stats.failed());
  auto j = Json::parse(stats.response.body);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ((*j)["requests_proxied"].as_int(), 3);
  EXPECT_EQ((*j)["rules_installed"].as_int(), 1);
  EXPECT_EQ((*j)["rule_matches"].as_int(), 0);  // pattern never matched
  EXPECT_EQ((*j)["records_buffered"].as_int(), 6);
  api.stop();
  agent.stop();
}

}  // namespace
}  // namespace gremlin::httpserver
