// Tests for the workload generators: open-loop spacing, Poisson arrivals,
// request-ID stamping, and result bookkeeping.
#include <gtest/gtest.h>

#include "control/recipe.h"
#include "faults/rule.h"
#include "workload/generator.h"

namespace gremlin::workload {
namespace {

sim::SimService* add_leaf(sim::Simulation* sim, const std::string& name,
                          Duration processing = msec(1)) {
  sim::ServiceConfig cfg;
  cfg.name = name;
  cfg.processing_time = processing;
  return sim->add_service(cfg);
}

TEST(TrafficTest, OpenLoopInjectsAllRequests) {
  sim::Simulation sim;
  add_leaf(&sim, "svc");
  TrafficSpec spec;
  spec.count = 25;
  spec.gap = msec(10);
  const auto result = run_traffic(&sim, "svc", spec);
  EXPECT_EQ(result.latencies.size(), 25u);
  EXPECT_EQ(result.failures, 0u);
  for (const int status : result.statuses) EXPECT_EQ(status, 200);
}

TEST(TrafficTest, RequestIdsCarryPrefix) {
  sim::Simulation sim;
  add_leaf(&sim, "svc");
  TrafficSpec spec;
  spec.count = 5;
  spec.id_prefix = "fig6-";
  run_traffic(&sim, "svc", spec);
  control::FailureOrchestrator orch(&sim.deployment());
  ASSERT_TRUE(orch.collect_logs(&sim.log_store()).ok());
  EXPECT_EQ(sim.log_store().get_requests("user", "svc", "fig6-*").size(),
            5u);
  EXPECT_TRUE(
      sim.log_store().get_requests("user", "svc", "test-*").empty());
}

TEST(TrafficTest, OpenLoopSpacingIsExact) {
  sim::Simulation sim;
  add_leaf(&sim, "svc", kDurationZero);
  TrafficSpec spec;
  spec.count = 4;
  spec.gap = msec(100);
  run_traffic(&sim, "svc", spec);
  control::FailureOrchestrator orch(&sim.deployment());
  ASSERT_TRUE(orch.collect_logs(&sim.log_store()).ok());
  const auto requests = sim.log_store().get_requests("user", "svc");
  ASSERT_EQ(requests.size(), 4u);
  for (size_t i = 1; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].timestamp - requests[i - 1].timestamp, msec(100));
  }
}

TEST(TrafficTest, PoissonArrivalsVaryButAreDeterministic) {
  auto arrival_times = [](uint64_t seed) {
    sim::SimulationConfig cfg;
    cfg.seed = seed;
    sim::Simulation sim(cfg);
    add_leaf(&sim, "svc", kDurationZero);
    TrafficSpec spec;
    spec.count = 20;
    spec.gap = msec(50);
    spec.poisson = true;
    run_traffic(&sim, "svc", spec);
    control::FailureOrchestrator orch(&sim.deployment());
    (void)orch.collect_logs(&sim.log_store());
    std::vector<int64_t> times;
    for (const auto& r : sim.log_store().get_requests("user", "svc")) {
      times.push_back(r.timestamp.count());
    }
    return times;
  };
  const auto a = arrival_times(1);
  EXPECT_EQ(a, arrival_times(1));
  EXPECT_NE(a, arrival_times(2));
  // Gaps are not constant under Poisson arrivals.
  std::set<int64_t> gaps;
  for (size_t i = 1; i < a.size(); ++i) gaps.insert(a[i] - a[i - 1]);
  EXPECT_GT(gaps.size(), 5u);
}

TEST(TrafficTest, FailuresCounted) {
  sim::Simulation sim;
  sim::SimService* svc = add_leaf(&sim, "svc");
  faults::FaultRule rule =
      faults::FaultRule::abort_rule("user", "svc", 503, "test-*");
  rule.max_matches = 3;
  // Install on the edge client's agent — create it first via a warm call.
  sim.inject("user", "svc", sim::SimRequest{.request_id = "warm"},
             [](const sim::SimResponse&) {});
  sim.run();
  ASSERT_TRUE(sim.find_service("user")
                  ->instance(0)
                  .agent()
                  ->install_rules({rule})
                  .ok());
  (void)svc;
  TrafficSpec spec;
  spec.count = 10;
  const auto result = run_traffic(&sim, "svc", spec);
  EXPECT_EQ(result.failures, 3u);
  EXPECT_EQ(result.successful_latencies().size(), 7u);
}

}  // namespace
}  // namespace gremlin::workload
