// Tests for the workload generators: open-loop spacing, Poisson arrivals,
// request-ID stamping, and result bookkeeping.
#include <gtest/gtest.h>

#include <algorithm>

#include "control/recipe.h"
#include "faults/rule.h"
#include "workload/generator.h"

namespace gremlin::workload {
namespace {

sim::SimService* add_leaf(sim::Simulation* sim, const std::string& name,
                          Duration processing = msec(1)) {
  sim::ServiceConfig cfg;
  cfg.name = name;
  cfg.processing_time = processing;
  return sim->add_service(cfg);
}

TEST(TrafficTest, OpenLoopInjectsAllRequests) {
  sim::Simulation sim;
  add_leaf(&sim, "svc");
  TrafficSpec spec;
  spec.count = 25;
  spec.gap = msec(10);
  const auto result = run_traffic(&sim, "svc", spec);
  EXPECT_EQ(result.latencies.size(), 25u);
  EXPECT_EQ(result.failures, 0u);
  for (const int status : result.statuses) EXPECT_EQ(status, 200);
}

TEST(TrafficTest, RequestIdsCarryPrefix) {
  sim::Simulation sim;
  add_leaf(&sim, "svc");
  TrafficSpec spec;
  spec.count = 5;
  spec.id_prefix = "fig6-";
  run_traffic(&sim, "svc", spec);
  control::FailureOrchestrator orch(&sim.deployment());
  ASSERT_TRUE(orch.collect_logs(&sim.log_store()).ok());
  EXPECT_EQ(sim.log_store().get_requests("user", "svc", "fig6-*").size(),
            5u);
  EXPECT_TRUE(
      sim.log_store().get_requests("user", "svc", "test-*").empty());
}

TEST(TrafficTest, OpenLoopSpacingIsExact) {
  sim::Simulation sim;
  add_leaf(&sim, "svc", kDurationZero);
  TrafficSpec spec;
  spec.count = 4;
  spec.gap = msec(100);
  run_traffic(&sim, "svc", spec);
  control::FailureOrchestrator orch(&sim.deployment());
  ASSERT_TRUE(orch.collect_logs(&sim.log_store()).ok());
  const auto requests = sim.log_store().get_requests("user", "svc");
  ASSERT_EQ(requests.size(), 4u);
  for (size_t i = 1; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].timestamp - requests[i - 1].timestamp, msec(100));
  }
}

TEST(TrafficTest, PoissonArrivalsVaryButAreDeterministic) {
  auto arrival_times = [](uint64_t seed) {
    sim::SimulationConfig cfg;
    cfg.seed = seed;
    sim::Simulation sim(cfg);
    add_leaf(&sim, "svc", kDurationZero);
    TrafficSpec spec;
    spec.count = 20;
    spec.gap = msec(50);
    spec.poisson = true;
    run_traffic(&sim, "svc", spec);
    control::FailureOrchestrator orch(&sim.deployment());
    (void)orch.collect_logs(&sim.log_store());
    std::vector<int64_t> times;
    for (const auto& r : sim.log_store().get_requests("user", "svc")) {
      times.push_back(r.timestamp.count());
    }
    return times;
  };
  const auto a = arrival_times(1);
  EXPECT_EQ(a, arrival_times(1));
  EXPECT_NE(a, arrival_times(2));
  // Gaps are not constant under Poisson arrivals.
  std::set<int64_t> gaps;
  for (size_t i = 1; i < a.size(); ++i) gaps.insert(a[i] - a[i - 1]);
  EXPECT_GT(gaps.size(), 5u);
}

std::vector<int64_t> arrival_timestamps(sim::Simulation* sim) {
  control::FailureOrchestrator orch(&sim->deployment());
  (void)orch.collect_logs(&sim->log_store());
  std::vector<int64_t> times;
  for (const auto& r : sim->log_store().get_requests("user", "svc")) {
    times.push_back(r.timestamp.count());
  }
  return times;
}

TEST(TrafficTest, ChainedArrivalsMatchPrescheduledSchedule) {
  // Deterministic shapes make chained (self-rescheduling) injection land on
  // the same virtual-clock instants as upfront scheduling.
  auto run_mode = [](bool chained) {
    sim::Simulation sim;
    add_leaf(&sim, "svc", kDurationZero);
    TrafficSpec spec;
    spec.count = 30;
    spec.gap = msec(7);
    spec.chained = chained;
    run_traffic(&sim, "svc", spec);
    return arrival_timestamps(&sim);
  };
  const auto prescheduled = run_mode(false);
  const auto chained = run_mode(true);
  ASSERT_EQ(prescheduled.size(), 30u);
  EXPECT_EQ(prescheduled, chained);
}

TEST(TrafficTest, ChainedInjectionKeepsPendingArrivalsConstant) {
  sim::Simulation prescheduled_sim;
  add_leaf(&prescheduled_sim, "svc");
  sim::Simulation chained_sim;
  add_leaf(&chained_sim, "svc");
  TrafficSpec spec;
  spec.count = 1000;
  spec.chained = false;
  schedule_traffic(&prescheduled_sim, "svc", spec);
  spec.chained = true;
  schedule_traffic(&chained_sim, "svc", spec);
  // Upfront scheduling parks all 1000 arrivals in the queue; the chain
  // parks exactly one and re-arms itself as the simulation runs.
  EXPECT_EQ(prescheduled_sim.event_queue().size(), 1000u);
  EXPECT_EQ(chained_sim.event_queue().size(), 1u);
  chained_sim.run();
  EXPECT_FALSE(chained_sim.has_pending_events());
}

TEST(TrafficTest, RampShapeAcceleratesArrivals) {
  sim::Simulation sim;
  add_leaf(&sim, "svc", kDurationZero);
  TrafficSpec spec;
  spec.count = 11;
  spec.gap = msec(100);
  spec.shape = TrafficSpec::Shape::kRamp;
  spec.ramp_to = msec(10);
  run_traffic(&sim, "svc", spec);
  const auto times = arrival_timestamps(&sim);
  ASSERT_EQ(times.size(), 11u);
  // Gaps interpolate linearly from 100ms toward 10ms: strictly decreasing.
  for (size_t i = 2; i < times.size(); ++i) {
    EXPECT_LT(times[i] - times[i - 1], times[i - 1] - times[i - 2]);
  }
  EXPECT_EQ(times[1] - times[0], msec(100).count());
}

TEST(TrafficTest, DiurnalShapeOscillatesDeterministically) {
  auto run_once = [] {
    sim::Simulation sim;
    add_leaf(&sim, "svc", kDurationZero);
    TrafficSpec spec;
    spec.count = 40;
    spec.gap = msec(10);
    spec.shape = TrafficSpec::Shape::kDiurnal;
    spec.diurnal_period = msec(200);
    spec.diurnal_amplitude = 0.5;
    run_traffic(&sim, "svc", spec);
    return arrival_timestamps(&sim);
  };
  const auto a = run_once();
  ASSERT_EQ(a.size(), 40u);
  EXPECT_EQ(a, run_once());
  // The sinusoidal rate curve produces both faster- and slower-than-nominal
  // gaps around the 10ms baseline.
  int64_t shortest = a[1] - a[0];
  int64_t longest = shortest;
  for (size_t i = 1; i < a.size(); ++i) {
    shortest = std::min(shortest, a[i] - a[i - 1]);
    longest = std::max(longest, a[i] - a[i - 1]);
  }
  EXPECT_LT(shortest, msec(10).count());
  EXPECT_GT(longest, msec(10).count());
}

TEST(TrafficTest, FailuresCounted) {
  sim::Simulation sim;
  sim::SimService* svc = add_leaf(&sim, "svc");
  faults::FaultRule rule =
      faults::FaultRule::abort_rule("user", "svc", 503, "test-*");
  rule.max_matches = 3;
  // Install on the edge client's agent — create it first via a warm call.
  sim.inject("user", "svc", sim::SimRequest{.request_id = "warm"},
             [](const sim::SimResponse&) {});
  sim.run();
  ASSERT_TRUE(sim.find_service("user")
                  ->instance(0)
                  .agent()
                  ->install_rules({rule})
                  .ok());
  (void)svc;
  TrafficSpec spec;
  spec.count = 10;
  const auto result = run_traffic(&sim, "svc", spec);
  EXPECT_EQ(result.failures, 3u);
  EXPECT_EQ(result.successful_latencies().size(), 7u);
}

}  // namespace
}  // namespace gremlin::workload
