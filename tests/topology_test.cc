// Unit tests for the logical application graph and the physical deployment.
#include <gtest/gtest.h>

#include "topology/deployment.h"
#include "topology/graph.h"

namespace gremlin::topology {
namespace {

TEST(AppGraphTest, EdgesAndLookups) {
  AppGraph g;
  g.add_edge("a", "b");
  g.add_edge("a", "c");
  g.add_edge("b", "d");
  EXPECT_TRUE(g.has_service("a"));
  EXPECT_TRUE(g.has_service("d"));
  EXPECT_FALSE(g.has_service("z"));
  EXPECT_TRUE(g.has_edge("a", "b"));
  EXPECT_FALSE(g.has_edge("b", "a"));
  EXPECT_EQ(g.service_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
}

TEST(AppGraphTest, DependentsAndDependencies) {
  AppGraph g;
  g.add_edge("a", "b");
  g.add_edge("c", "b");
  g.add_edge("b", "d");
  EXPECT_EQ(g.dependents("b"), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(g.dependencies("b"), (std::vector<std::string>{"d"}));
  EXPECT_TRUE(g.dependents("a").empty());
  EXPECT_TRUE(g.dependencies("d").empty());
  EXPECT_TRUE(g.dependents("missing").empty());
}

TEST(AppGraphTest, AddEdgeIdempotent) {
  AppGraph g;
  g.add_edge("a", "b");
  g.add_edge("a", "b");
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(AppGraphTest, EntryPoints) {
  AppGraph g;
  g.add_edge("user", "frontend");
  g.add_edge("frontend", "db");
  g.add_service("lonely");
  auto entries = g.entry_points();
  EXPECT_EQ(entries, (std::vector<std::string>{"lonely", "user"}));
}

TEST(AppGraphTest, CutCrossingEdgesBothDirections) {
  AppGraph g;
  g.add_edge("a", "b");
  g.add_edge("b", "c");
  g.add_edge("c", "a");  // cycle is fine for cut computation
  g.add_edge("b", "d");
  const auto cut = g.cut({"a", "b"});
  // Crossing: b->c, c->a, b->d.
  EXPECT_EQ(cut.size(), 3u);
  EXPECT_TRUE(std::count(cut.begin(), cut.end(), Edge{"b", "c"}));
  EXPECT_TRUE(std::count(cut.begin(), cut.end(), Edge{"c", "a"}));
  EXPECT_TRUE(std::count(cut.begin(), cut.end(), Edge{"b", "d"}));
}

TEST(AppGraphTest, CutOfEmptyGroupIsEmpty) {
  AppGraph g;
  g.add_edge("a", "b");
  EXPECT_TRUE(g.cut({}).empty());
  EXPECT_TRUE(g.cut({"a", "b"}).empty());
}

TEST(AppGraphTest, AcyclicValidation) {
  AppGraph dag;
  dag.add_edge("a", "b");
  dag.add_edge("b", "c");
  dag.add_edge("a", "c");
  EXPECT_TRUE(dag.validate_acyclic().ok());

  AppGraph cyclic = dag;
  cyclic.add_edge("c", "a");
  EXPECT_FALSE(cyclic.validate_acyclic().ok());

  AppGraph self_loop;
  self_loop.add_edge("a", "a");
  EXPECT_FALSE(self_loop.validate_acyclic().ok());
}

class BinaryTreeTest : public ::testing::TestWithParam<int> {};

TEST_P(BinaryTreeTest, ShapeIsCorrect) {
  const int depth = GetParam();
  const AppGraph g = AppGraph::binary_tree(depth);
  const size_t expected = (1u << depth) - 1;
  EXPECT_EQ(g.service_count(), expected);
  EXPECT_EQ(g.edge_count(), expected - 1);
  EXPECT_TRUE(g.validate_acyclic().ok());
  // Root has no callers; every other node has exactly one.
  EXPECT_TRUE(g.dependents("svc0").empty());
  for (size_t i = 1; i < expected; ++i) {
    EXPECT_EQ(g.dependents("svc" + std::to_string(i)).size(), 1u) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, BinaryTreeTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(AppGraphTest, Chain) {
  const AppGraph g = AppGraph::chain(4);
  EXPECT_EQ(g.service_count(), 4u);
  EXPECT_EQ(g.edge_count(), 3u);
  EXPECT_TRUE(g.has_edge("s0", "s1"));
  EXPECT_TRUE(g.has_edge("s2", "s3"));
  EXPECT_EQ(AppGraph::chain(0).service_count(), 0u);
  EXPECT_EQ(AppGraph::chain(1).service_count(), 1u);
}

// ------------------------------------------------------------- deployment

class FakeAgent : public AgentHandle {
 public:
  explicit FakeAgent(std::string id) : id_(std::move(id)) {}
  std::string instance_id() const override { return id_; }
  VoidResult install_rules(const std::vector<faults::FaultRule>& rules)
      override {
    installed += rules.size();
    return VoidResult::success();
  }
  VoidResult clear_rules() override {
    installed = 0;
    return VoidResult::success();
  }
  VoidResult remove_rules(const std::vector<std::string>& ids) override {
    installed -= std::min(installed, ids.size());
    return VoidResult::success();
  }
  Result<logstore::RecordList> fetch_records() override {
    return logstore::RecordList{};
  }
  VoidResult clear_records() override { return VoidResult::success(); }

  size_t installed = 0;

 private:
  std::string id_;
};

TEST(DeploymentTest, TracksInstancesPerService) {
  Deployment d;
  auto a0 = std::make_shared<FakeAgent>("a/0");
  auto a1 = std::make_shared<FakeAgent>("a/1");
  auto b0 = std::make_shared<FakeAgent>("b/0");
  d.add_instance("a", a0);
  d.add_instance("a", a1);
  d.add_instance("b", b0);

  EXPECT_EQ(d.instance_count(), 3u);
  EXPECT_EQ(d.instances("a").size(), 2u);
  EXPECT_EQ(d.instances("b").size(), 1u);
  EXPECT_TRUE(d.instances("c").empty());
  EXPECT_TRUE(d.has_service("a"));
  EXPECT_FALSE(d.has_service("c"));
  EXPECT_EQ(d.services(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(d.all_agents().size(), 3u);
}

}  // namespace
}  // namespace gremlin::topology
