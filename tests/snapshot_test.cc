// Prefix-snapshot execution tests: the byte-identity contract (an
// experiment restored from a fault-free prefix snapshot produces exactly
// the results a cold run would), cache hit/miss accounting and its
// surfacing in campaign reports, snapshot hygiene (a world that has hosted
// snapshot runs deep-resets to the cold-start state), and a seeded fuzz
// over random activation offsets — i.e. random snapshot instants.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/app_spec.h"
#include "campaign/experiment.h"
#include "campaign/runner.h"
#include "campaign/warm_world.h"
#include "common/rng.h"
#include "report/campaign_report.h"
#include "sim/simulation.h"

namespace gremlin::campaign {
namespace {

control::LoadOptions small_load() {
  control::LoadOptions load;
  load.count = 30;
  load.gap = msec(5);
  return load;
}

// A sweep where every failure spec carries an activation window starting
// mid-load — the shape prefix snapshots exist for. Two windows share one
// load/seed, so siblings exercise both cache misses and hits.
std::vector<Experiment> windowed_tree_sweep(uint64_t seed = 42) {
  const AppSpec app = AppSpec::buggy_tree();
  SweepOptions options;
  options.load = small_load();
  options.seed = seed;
  options.windows.push_back({msec(20), Duration{}});
  options.windows.push_back({msec(40), msec(30)});
  return generate_sweep(app, app.probe_graph(), options);
}

Experiment windowed_abort(Duration after, uint64_t seed = 42) {
  Experiment e;
  e.id = "abort(serviceA->serviceB) after=" +
         std::to_string(after.count()) + "us";
  e.app = AppSpec::quickstart(3, msec(50));
  auto spec = control::FailureSpec::abort_edge("serviceA", "serviceB");
  spec.after = after;
  e.failures.push_back(spec);
  e.client = "user";
  e.target = "serviceA";
  e.load = small_load();
  e.checks.push_back(CheckSpec::max_user_failures(1000));
  e.seed = seed;
  return e;
}

// --- the headline contract: snapshot == cold, byte for byte ---------------

TEST(SnapshotColdDifferentialTest, CampaignByteIdenticalAcrossMatrix) {
  // The hard invariant of prefix-snapshot execution: for every thread
  // count, with the timer wheel on or off, and with early exit on or off,
  // a campaign run from restored snapshots is byte-identical —
  // fingerprint() AND verdict_fingerprint() — to a cold one.
  const auto experiments =
      replicate_seeds(windowed_tree_sweep(), {7, 1234567});
  for (const bool early_exit : {true, false}) {
    RunnerOptions cold_options;
    cold_options.threads = 1;
    cold_options.early_exit = early_exit;
    cold_options.warm_worlds = false;
    const CampaignResult cold = CampaignRunner(cold_options).run(experiments);

    for (const bool wheel : {true, false}) {
      for (const int threads : {1, 4, 8}) {
        RunnerOptions snap_options;
        snap_options.threads = threads;
        snap_options.early_exit = early_exit;
        snap_options.warm_worlds = true;
        snap_options.use_snapshots = true;
        snap_options.use_timer_wheel = wheel;
        const CampaignResult snap =
            CampaignRunner(snap_options).run(experiments);
        ASSERT_EQ(snap.experiments.size(), cold.experiments.size());
        EXPECT_EQ(snap.fingerprint(), cold.fingerprint())
            << "threads=" << threads << " wheel=" << wheel
            << " early_exit=" << early_exit;
        EXPECT_EQ(snap.verdict_fingerprint(), cold.verdict_fingerprint())
            << "threads=" << threads << " wheel=" << wheel
            << " early_exit=" << early_exit;
      }
    }

    // --no-snapshot parity: disabling the cache changes nothing but the
    // execution path.
    RunnerOptions off_options;
    off_options.threads = 1;
    off_options.early_exit = early_exit;
    off_options.use_snapshots = false;
    const CampaignResult off = CampaignRunner(off_options).run(experiments);
    EXPECT_EQ(off.fingerprint(), cold.fingerprint());
    EXPECT_EQ(off.verdict_fingerprint(), cold.verdict_fingerprint());
  }
}

TEST(SnapshotColdDifferentialTest, MultiprocessByteIdentical) {
  // Snapshot stats ride the result wire format (codec v3); the merged
  // multi-process campaign must stay byte-identical and preserve the
  // per-experiment snapshot_path markers.
  const auto experiments = replicate_seeds(windowed_tree_sweep(), {3, 99});
  RunnerOptions one;
  one.threads = 2;
  one.procs = 1;
  const CampaignResult single = CampaignRunner(one).run(experiments);

  RunnerOptions two = one;
  two.procs = 2;
  const CampaignResult sharded = CampaignRunner(two).run(experiments);

  EXPECT_EQ(sharded.fingerprint(), single.fingerprint());
  EXPECT_EQ(sharded.verdict_fingerprint(), single.verdict_fingerprint());
  size_t snapshot_runs = 0;
  for (const auto& e : sharded.experiments) {
    if (e.snapshot_path != 0) ++snapshot_runs;
  }
  EXPECT_GT(snapshot_runs, 0u);
}

// --- cache accounting and report surfacing --------------------------------

TEST(SnapshotCacheTest, SiblingsHitTheSharedPrefix) {
  // Two experiments that differ only in fault rules share (seed, load,
  // client, target): the first builds the prefix snapshot, the second
  // restores it.
  const Experiment first = windowed_abort(msec(25));
  Experiment second = windowed_abort(msec(25));
  second.failures.clear();
  auto delay = control::FailureSpec::delay_edge("serviceA", "serviceB",
                                                msec(40));
  delay.after = msec(25);
  second.failures.push_back(delay);
  second.id = "delay(serviceA->serviceB) after=25ms";

  WarmWorld world(first.app);
  ExecOptions exec;
  const ExperimentResult a = world.run(first, exec);
  const ExperimentResult b = world.run(second, exec);
  EXPECT_EQ(a.snapshot_path, 1) << "first eligible run builds the snapshot";
  EXPECT_EQ(b.snapshot_path, 2) << "sibling restores it";
  EXPECT_GT(b.prefix_events_skipped, 0u);
  EXPECT_EQ(world.snapshots().misses(), 1u);
  EXPECT_EQ(world.snapshots().hits(), 1u);
  EXPECT_GT(world.snapshots().prefix_events_skipped(), 0u);

  // Both paths remain byte-identical to cold execution.
  EXPECT_EQ(a.fingerprint(), CampaignRunner::run_one(first, exec).fingerprint());
  EXPECT_EQ(b.fingerprint(),
            CampaignRunner::run_one(second, exec).fingerprint());
}

TEST(SnapshotCacheTest, ImmediateFaultsDegradeToWarmPath) {
  // after == 0 means no sharable fault-free prefix: the run takes the
  // normal warm path (snapshot_path == 0) and stays byte-identical.
  const Experiment e = windowed_abort(Duration{});
  WarmWorld world(e.app);
  ExecOptions exec;
  const ExperimentResult r = world.run(e, exec);
  EXPECT_EQ(r.snapshot_path, 0);
  EXPECT_EQ(world.snapshots().misses(), 0u);
  EXPECT_EQ(world.snapshots().hits(), 0u);
  EXPECT_EQ(r.fingerprint(), CampaignRunner::run_one(e, exec).fingerprint());
}

TEST(SnapshotCacheTest, ReportCarriesHitMissCounters) {
  const auto experiments = windowed_tree_sweep();
  RunnerOptions options;
  options.threads = 1;
  const CampaignResult result = CampaignRunner(options).run(experiments);
  const report::CampaignReport rep =
      report::build_campaign_report(result, "snapshot-report");
  EXPECT_GT(rep.snapshot_hits + rep.snapshot_misses, 0u);
  const Json j = rep.to_json();
  EXPECT_TRUE(j.contains("snapshot_hits"));
  EXPECT_TRUE(j.contains("snapshot_misses"));
  EXPECT_TRUE(j.contains("prefix_events_skipped"));
  // Campaign-level latency quantiles stream over every kept request.
  EXPECT_GT(rep.latency.count, 0u);
  EXPECT_TRUE(j.contains("latency_p50_us"));
  EXPECT_TRUE(j.contains("latency_p90_us"));
  EXPECT_TRUE(j.contains("latency_p99_us"));
  EXPECT_LE(rep.latency.p50, rep.latency.p99);
}

// --- snapshot hygiene -----------------------------------------------------

TEST(SnapshotHygieneTest, WorldDeepResetsAfterSnapshotRuns) {
  // Drive a miss and a hit through a world, then reset and inspect every
  // piece of state the next experiment could observe.
  const Experiment e = windowed_abort(msec(25), 11);
  WarmWorld world(e.app);
  ExecOptions exec;
  ASSERT_TRUE(world.run(e, exec).ok);   // miss: builds the snapshot
  ASSERT_TRUE(world.run(e, exec).ok);   // hit: restores it

  sim::Simulation* sim = world.simulation();
  ASSERT_NE(sim, nullptr);
  sim->reset(e.seed);

  // Clock, queue, and pool: virtual time zero, nothing pending, every
  // pooled event slot back on the free list (restored events were
  // re-acquired from the pool and must all have drained or been cleared).
  EXPECT_EQ(sim->now(), TimePoint{});
  EXPECT_FALSE(sim->has_pending_events());
  EXPECT_FALSE(sim->stop_requested());
  const sim::EventQueue& queue = sim->event_queue();
  EXPECT_EQ(queue.free_list_length(), queue.pool_capacity());

  // LogStore empty; per-service state pristine (breakers closed, bulkheads
  // idle, queues empty, no fault rules, no buffered observations).
  EXPECT_EQ(sim->log_store().size(), 0u);
  for (const char* name : {"serviceA", "serviceB", "user"}) {
    sim::SimService* svc = sim->find_service(name);
    ASSERT_NE(svc, nullptr) << name;
    for (size_t i = 0; i < svc->instance_count(); ++i) {
      EXPECT_TRUE(svc->instance(i).pristine()) << name;
      const auto& agent = svc->instance(i).agent();
      EXPECT_EQ(agent->engine().rule_count(), 0u) << name;
      EXPECT_EQ(agent->buffered_records(), 0u) << name;
    }
  }

  // RNG reseeded exactly: the next draw matches a cold Rng(seed).
  EXPECT_EQ(sim->rng().next_u64(), Rng(e.seed).next_u64());

  // And the proof it all worked: reset again (the draw above consumed
  // state), then the next snapshot-path run is byte-identical to cold.
  sim->reset(e.seed);
  EXPECT_EQ(world.run(e, exec).fingerprint(),
            CampaignRunner::run_one(e, exec).fingerprint());
}

// --- seeded fuzz over random snapshot instants ----------------------------

TEST(SnapshotFuzzTest, RandomActivationOffsetsStayByteIdentical) {
  // The snapshot instant is min(after) - 1 tick, so fuzzing the activation
  // offset fuzzes where in the run the world is captured: mid-burst, between
  // responses, after quiescence (offset beyond the load's natural end), and
  // the 1-tick boundary. Every trial must match cold execution byte for
  // byte, through both the build (miss) and restore (hit) paths.
  Rng fuzz(0xf00dfeedULL);
  for (int trial = 0; trial < 10; ++trial) {
    const Duration after = usec(fuzz.uniform(1, 220000));
    const uint64_t seed = 100 + trial % 3;
    const Experiment e = windowed_abort(after, seed);
    for (const bool early_exit : {false, true}) {
      ExecOptions exec;
      exec.early_exit = early_exit;
      const std::string cold = CampaignRunner::run_one(e, exec).fingerprint();

      WarmWorld world(e.app);
      const ExperimentResult miss = world.run(e, exec);
      const ExperimentResult hit = world.run(e, exec);
      if (!early_exit) {
        // Without online checking the tape can never decide mid-prefix, so
        // the snapshot path always engages: build, then restore.
        EXPECT_EQ(miss.snapshot_path, 1) << e.id;
        EXPECT_EQ(hit.snapshot_path, 2) << e.id;
      }
      EXPECT_EQ(miss.fingerprint(), cold) << e.id;
      EXPECT_EQ(hit.fingerprint(), cold) << e.id;
    }
  }
}

TEST(SnapshotFuzzTest, ShrinkingOffsetsRebuildTheSnapshot) {
  // Same cache key, earlier activation: the cached snapshot (taken later
  // than the new activation instant) is unusable, so the cache rebuilds at
  // the earlier instant — and stays byte-identical both ways.
  WarmWorld world(windowed_abort(msec(1)).app);
  ExecOptions exec;
  for (const Duration after : {msec(80), msec(40), msec(5)}) {
    const Experiment e = windowed_abort(after, 77);
    const ExperimentResult r = world.run(e, exec);
    EXPECT_EQ(r.snapshot_path, 1) << "earlier offset must rebuild";
    EXPECT_EQ(r.fingerprint(),
              CampaignRunner::run_one(e, exec).fingerprint());
  }
  EXPECT_EQ(world.snapshots().misses(), 3u);
  // And a revisit of the latest offset is a hit again (the cache converged
  // to the minimum activation).
  const Experiment e = windowed_abort(msec(40), 77);
  const ExperimentResult r = world.run(e, exec);
  EXPECT_EQ(r.snapshot_path, 2);
  EXPECT_EQ(r.fingerprint(), CampaignRunner::run_one(e, exec).fingerprint());
}

}  // namespace
}  // namespace gremlin::campaign
