// Tests for the case-study applications: the WordPress/ElasticPress
// behaviours behind Figures 5 and 6, the enterprise app's Unirest bug, the
// binary-tree builder, and all five Table 1 outage recreations (naive
// variants must fail their recipes' assertions, resilient ones must pass).
#include <gtest/gtest.h>

#include "apps/enterprise.h"
#include "apps/outages.h"
#include "apps/trees.h"
#include "apps/wordpress.h"
#include "control/recipe.h"
#include "workload/stats.h"

namespace gremlin::apps {
namespace {

using control::FailureSpec;
using control::LoadOptions;
using control::TestSession;
using sim::Simulation;
using sim::SimulationConfig;

// ---------------------------------------------------------------- wordpress

TEST(WordPressTest, HealthySearchUsesElasticsearch) {
  Simulation sim;
  auto graph = build_wordpress_app(&sim);
  TestSession session(&sim, graph);
  auto load = session.run_load("user", "wordpress", 10);
  EXPECT_EQ(load.failures, 0u);
  ASSERT_TRUE(session.collect().ok());
  // All searches hit elasticsearch, none needed mysql.
  EXPECT_EQ(session.checker().get_requests("wordpress", "elasticsearch")
                .size(), 10u);
  EXPECT_TRUE(
      session.checker().get_requests("wordpress", "mysql").empty());
}

TEST(WordPressTest, FallsBackToMysqlOnElasticsearchErrors) {
  Simulation sim;
  auto graph = build_wordpress_app(&sim);
  TestSession session(&sim, graph);
  ASSERT_TRUE(
      session.apply(FailureSpec::disconnect("wordpress", "elasticsearch"))
          .ok());
  auto load = session.run_load("user", "wordpress", 10);
  // Graceful degradation: the user still gets 200s.
  EXPECT_EQ(load.failures, 0u);
  ASSERT_TRUE(session.collect().ok());
  EXPECT_EQ(session.checker().get_requests("wordpress", "mysql").size(),
            10u);
}

TEST(WordPressTest, InjectedDelayOffsetsResponseTimes) {
  // The Figure 5 mechanism: without a timeout, WordPress's response time is
  // the injected delay plus its normal latency — for every request.
  for (const int delay_s : {1, 2}) {
    Simulation sim;
    auto graph = build_wordpress_app(&sim);
    TestSession session(&sim, graph);
    ASSERT_TRUE(session
                    .apply(FailureSpec::delay_edge(
                        "wordpress", "elasticsearch", sec(delay_s)))
                    .ok());
    auto load = session.run_load("user", "wordpress", 20);
    for (const Duration lat : load.latencies) {
      EXPECT_GE(lat, sec(delay_s));
      EXPECT_LT(lat, sec(delay_s) + msec(100));
    }
  }
}

TEST(WordPressTest, TimeoutVariantBoundsResponseTimes) {
  Simulation sim;
  WordPressOptions options;
  options.with_timeout = true;
  options.timeout = msec(200);
  auto graph = build_wordpress_app(&sim, options);
  TestSession session(&sim, graph);
  ASSERT_TRUE(session
                  .apply(FailureSpec::delay_edge("wordpress",
                                                 "elasticsearch", sec(3)))
                  .ok());
  auto load = session.run_load("user", "wordpress", 20);
  EXPECT_EQ(load.failures, 0u);  // falls back to mysql after the timeout
  for (const Duration lat : load.latencies) {
    EXPECT_LT(lat, sec(1));
  }
}

TEST(WordPressTest, Figure6ShapeWithoutBreaker) {
  // Abort 100 consecutive requests, then delay the next 100 by 3s: without
  // a circuit breaker every delayed request takes >= 3s.
  Simulation sim;
  auto graph = build_wordpress_app(&sim);
  TestSession session(&sim, graph);

  FailureSpec abort_spec = FailureSpec::abort_edge(
      "wordpress", "elasticsearch", 503);
  abort_spec.max_matches = 100;
  FailureSpec delay_spec = FailureSpec::delay_edge(
      "wordpress", "elasticsearch", sec(3));
  delay_spec.max_matches = 100;
  ASSERT_TRUE(session.apply(abort_spec).ok());
  ASSERT_TRUE(session.apply(delay_spec).ok());

  LoadOptions load;
  load.count = 200;
  load.closed_loop = true;  // sequential, like ab -c 1
  const auto result = session.run_load("user", "wordpress", load);

  // First 100 (aborted → mysql fallback): fast.
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_LT(result.latencies[i], sec(1)) << i;
    EXPECT_EQ(result.statuses[i], 200) << i;
  }
  // Next 100 (delayed): all >= 3s — no breaker ever tripped.
  for (size_t i = 100; i < 200; ++i) {
    EXPECT_GE(result.latencies[i], sec(3)) << i;
  }
}

TEST(WordPressTest, Figure6CounterfactualWithBreaker) {
  // With a circuit breaker (threshold 50 < 100 aborts), the delayed phase
  // is short-circuited: requests return fast via the mysql fallback.
  Simulation sim;
  WordPressOptions options;
  options.with_circuit_breaker = true;
  options.breaker = resilience::CircuitBreakerConfig{50, sec(60), 1};
  auto graph = build_wordpress_app(&sim, options);
  TestSession session(&sim, graph);

  FailureSpec abort_spec =
      FailureSpec::abort_edge("wordpress", "elasticsearch", 503);
  abort_spec.max_matches = 100;
  FailureSpec delay_spec =
      FailureSpec::delay_edge("wordpress", "elasticsearch", sec(3));
  delay_spec.max_matches = 100;
  ASSERT_TRUE(session.apply(abort_spec).ok());
  ASSERT_TRUE(session.apply(delay_spec).ok());

  LoadOptions load;
  load.count = 200;
  load.closed_loop = true;
  const auto result = session.run_load("user", "wordpress", load);
  size_t fast = 0;
  for (size_t i = 100; i < 200; ++i) {
    if (result.latencies[i] < sec(1)) ++fast;
  }
  EXPECT_EQ(fast, 100u);  // the breaker opened during the abort phase
}

TEST(WordPressTest, GremlinAssertionsDiagnoseElasticPress) {
  // The paper's verdict: ElasticPress fails HasTimeouts and
  // HasCircuitBreaker.
  Simulation sim;
  auto graph = build_wordpress_app(&sim);
  TestSession session(&sim, graph);
  ASSERT_TRUE(session
                  .apply(FailureSpec::delay_edge("wordpress",
                                                 "elasticsearch", sec(2)))
                  .ok());
  session.run_load("user", "wordpress", 30);
  ASSERT_TRUE(session.collect().ok());
  EXPECT_FALSE(session.checker().has_timeouts("wordpress", sec(1)).passed);
}

// --------------------------------------------------------------- enterprise

TEST(EnterpriseTest, HealthyPageComposition) {
  Simulation sim;
  auto graph = build_enterprise_app(&sim);
  TestSession session(&sim, graph);
  auto load = session.run_load("user", "webapp", 10);
  EXPECT_EQ(load.failures, 0u);
  for (const int status : load.statuses) EXPECT_EQ(status, 200);
}

TEST(EnterpriseTest, SlowBackendDegradesGracefully) {
  // Unirest's timeout path works: a hung search backend produces partial
  // results, not errors.
  Simulation sim;
  auto graph = build_enterprise_app(&sim);
  TestSession session(&sim, graph);
  ASSERT_TRUE(
      session.apply(FailureSpec::hang("search-svc", sec(10))).ok());
  auto load = session.run_load("user", "webapp", 10);
  EXPECT_EQ(load.failures, 0u);
}

TEST(EnterpriseTest, UnirestBugSurfacesOnConnectionReset) {
  // The discovered bug: TCP-level failures escape the library.
  Simulation sim;
  auto graph = build_enterprise_app(&sim);
  TestSession session(&sim, graph);
  FailureSpec reset =
      FailureSpec::abort_edge("webapp", "search-svc", faults::kTcpReset);
  ASSERT_TRUE(session.apply(reset).ok());
  auto load = session.run_load("user", "webapp", 10);
  EXPECT_EQ(load.failures, 10u);
  for (const int status : load.statuses) EXPECT_EQ(status, 500);
}

TEST(EnterpriseTest, FixedLibraryHandlesReset) {
  Simulation sim;
  EnterpriseOptions options;
  options.fix_unirest_bug = true;
  auto graph = build_enterprise_app(&sim, options);
  TestSession session(&sim, graph);
  FailureSpec reset =
      FailureSpec::abort_edge("webapp", "search-svc", faults::kTcpReset);
  ASSERT_TRUE(session.apply(reset).ok());
  auto load = session.run_load("user", "webapp", 10);
  EXPECT_EQ(load.failures, 0u);
}

TEST(EnterpriseTest, GremlinDiagnosesTheBugViaTimeoutCheck) {
  // HasTimeouts passes (replies are fast)… but the replies are errors; the
  // recipe that found the bug watched behaviour under network instability.
  Simulation sim;
  auto graph = build_enterprise_app(&sim);
  TestSession session(&sim, graph);
  FailureSpec reset =
      FailureSpec::abort_edge("webapp", "search-svc", faults::kTcpReset);
  ASSERT_TRUE(session.apply(reset).ok());
  session.run_load("user", "webapp", 20);
  ASSERT_TRUE(session.collect().ok());
  // The webapp's own replies carry 500s — visible in the user-edge logs.
  const auto replies = session.checker().get_replies("user", "webapp");
  ASSERT_EQ(replies.size(), 20u);
  for (const auto& r : replies) EXPECT_EQ(r.status, 500);
}

// -------------------------------------------------------------------- trees

TEST(TreeAppTest, BuildsAllDepths) {
  for (const int depth : {1, 2, 3, 4, 5}) {
    Simulation sim;
    TreeOptions options;
    options.depth = depth;
    auto graph = build_tree_app(&sim, options);
    const size_t services = (1u << depth) - 1;
    EXPECT_EQ(graph.service_count(), services + 1);  // + user
    EXPECT_NE(sim.find_service("svc0"), nullptr);
    EXPECT_NE(
        sim.find_service("svc" + std::to_string(services - 1)), nullptr);
  }
}

TEST(TreeAppTest, RequestsReachAllLeaves) {
  Simulation sim;
  TreeOptions options;
  options.depth = 3;
  auto graph = build_tree_app(&sim, options);
  TestSession session(&sim, graph);
  auto load = session.run_load("user", "svc0", 5);
  EXPECT_EQ(load.failures, 0u);
  // Leaf svc6 (last of 7) handled all 5 requests.
  EXPECT_EQ(sim.find_service("svc6")->instance(0).requests_handled(), 5u);
}

// ------------------------------------------------------------- Table 1 cases

class OutageCaseTest : public ::testing::TestWithParam<size_t> {};

TEST_P(OutageCaseTest, NaiveVariantFailsRecipe) {
  const OutageCase& c = table1_cases()[GetParam()];
  const auto results = run_outage_case(c, /*resilient=*/false);
  ASSERT_FALSE(results.empty()) << c.id;
  bool any_failed = false;
  for (const auto& r : results) {
    if (!r.passed) any_failed = true;
  }
  EXPECT_TRUE(any_failed) << c.id
                          << ": recipe failed to diagnose the outage bug";
}

TEST_P(OutageCaseTest, ResilientVariantPassesRecipe) {
  const OutageCase& c = table1_cases()[GetParam()];
  const auto results = run_outage_case(c, /*resilient=*/true);
  ASSERT_FALSE(results.empty()) << c.id;
  for (const auto& r : results) {
    EXPECT_TRUE(r.passed) << c.id << ": " << r.name << " — " << r.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCases, OutageCaseTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           std::string id = table1_cases()[info.param].id;
                           for (char& ch : id) {
                             if (ch == '-') ch = '_';
                           }
                           return id;
                         });

TEST(OutageTableTest, FiveCasesRegistered) {
  EXPECT_EQ(table1_cases().size(), 5u);
  for (const auto& c : table1_cases()) {
    EXPECT_FALSE(c.id.empty());
    EXPECT_FALSE(c.summary.empty());
    EXPECT_TRUE(c.build != nullptr);
    EXPECT_TRUE(c.recipe != nullptr);
  }
}

// ------------------------------------------------------------------- stats

TEST(StatsTest, SummaryAndPercentiles) {
  std::vector<Duration> lat;
  for (int i = 1; i <= 100; ++i) lat.push_back(msec(i));
  const auto s = workload::summarize(lat);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min, msec(1));
  EXPECT_EQ(s.max, msec(100));
  EXPECT_EQ(s.p50, msec(50));
  EXPECT_EQ(s.p90, msec(90));
  EXPECT_EQ(s.p99, msec(99));
  EXPECT_EQ(workload::percentile(lat, 100), msec(100));
  EXPECT_EQ(workload::percentile({}, 50), kDurationZero);
}

TEST(StatsTest, CdfPointsMonotone) {
  std::vector<Duration> lat = {msec(5), msec(1), msec(3)};
  const auto pts = workload::cdf_points(lat);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].first, 0.001);
  EXPECT_NEAR(pts[2].second, 1.0, 1e-12);
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);
    EXPECT_GT(pts[i].second, pts[i - 1].second);
  }
}

TEST(StatsTest, CdfDownsampling) {
  std::vector<Duration> lat;
  for (int i = 1; i <= 1000; ++i) lat.push_back(usec(i));
  const auto pts = workload::cdf_points(lat, 10);
  EXPECT_EQ(pts.size(), 10u);
  EXPECT_NEAR(pts.back().second, 1.0, 1e-12);
}

}  // namespace
}  // namespace gremlin::apps
