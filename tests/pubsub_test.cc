// Tests for the publish-subscribe broker: delivery, fan-out, bounded
// queues, blocking vs rejecting publishers, at-least-once retries, request
// ID propagation, and the full Kafkapocalypse cascade under a Gremlin
// Crash of the downstream store.
#include <gtest/gtest.h>

#include "control/recipe.h"
#include "sim/pubsub.h"

namespace gremlin::sim {
namespace {

// A subscriber that records everything delivered to it.
struct Sink {
  std::vector<std::string> payloads;
  std::vector<std::string> request_ids;
  int fail_first = 0;  // fail this many deliveries before accepting

  SimService* install(Simulation* sim, const std::string& name,
                      Duration processing = msec(1)) {
    ServiceConfig cfg;
    cfg.name = name;
    cfg.processing_time = processing;
    cfg.handler = [this](std::shared_ptr<RequestContext> ctx) {
      if (fail_first > 0) {
        --fail_first;
        ctx->respond(503, "not ready");
        return;
      }
      payloads.push_back(ctx->request().body);
      request_ids.push_back(ctx->request().request_id);
      ctx->respond(200, "stored");
    };
    return sim->add_service(cfg);
  }
};

TEST(PubSubTest, DeliversInOrder) {
  Simulation sim;
  Sink sink;
  sink.install(&sim, "store");
  PubSubBroker broker(&sim, {});
  broker.subscribe("metrics", "store");
  for (int i = 0; i < 5; ++i) {
    broker.publish("metrics", "m" + std::to_string(i), "test-" + std::to_string(i));
  }
  sim.run();
  EXPECT_EQ(sink.payloads,
            (std::vector<std::string>{"m0", "m1", "m2", "m3", "m4"}));
  EXPECT_EQ(broker.delivered(), 5u);
  EXPECT_EQ(broker.queue_depth("metrics"), 0u);
}

TEST(PubSubTest, FanOutToAllSubscribers) {
  Simulation sim;
  Sink a, b;
  a.install(&sim, "sub-a");
  b.install(&sim, "sub-b");
  PubSubBroker broker(&sim, {});
  broker.subscribe("events", "sub-a");
  broker.subscribe("events", "sub-b");
  broker.publish("events", "hello", "test-1");
  sim.run();
  EXPECT_EQ(a.payloads, (std::vector<std::string>{"hello"}));
  EXPECT_EQ(b.payloads, (std::vector<std::string>{"hello"}));
}

TEST(PubSubTest, HttpStylePublishCarriesRequestId) {
  Simulation sim;
  Sink sink;
  sink.install(&sim, "store");
  PubSubBroker broker(&sim, {});
  broker.subscribe("logs", "store");

  // A publisher service posts through its sidecar.
  SimRequest req;
  req.method = "POST";
  req.uri = "/publish/logs";
  req.request_id = "test-42";
  req.body = "payload-bytes";
  int status = 0;
  sim.inject("publisher", "messagebus", req,
             [&](const SimResponse& resp) { status = resp.status; });
  sim.run();
  EXPECT_EQ(status, 202);
  ASSERT_EQ(sink.payloads.size(), 1u);
  EXPECT_EQ(sink.payloads[0], "payload-bytes");
  EXPECT_EQ(sink.request_ids[0], "test-42");  // flow ID survived the bus
}

TEST(PubSubTest, UnknownEndpointIs404) {
  Simulation sim;
  PubSubBroker broker(&sim, {});
  int status = 0;
  sim.inject("p", "messagebus", SimRequest{.uri = "/other", .request_id = "t"},
             [&](const SimResponse& resp) { status = resp.status; });
  sim.run();
  EXPECT_EQ(status, 404);
}

TEST(PubSubTest, TransientFailureRetriesAtLeastOnce) {
  Simulation sim;
  Sink sink;
  sink.fail_first = 2;
  sink.install(&sim, "store");
  PubSubBroker::Options options;
  options.delivery_retry = msec(10);
  PubSubBroker broker(&sim, options);
  broker.subscribe("t", "store");
  broker.publish("t", "msg", "test-1");
  sim.run();
  EXPECT_EQ(sink.payloads, (std::vector<std::string>{"msg"}));
  EXPECT_EQ(broker.delivery_failures(), 2u);
  EXPECT_EQ(broker.delivered(), 1u);
}

TEST(PubSubTest, BoundedAttemptsDropPoisonMessages) {
  Simulation sim;
  Sink sink;
  sink.fail_first = 100;  // effectively always failing
  sink.install(&sim, "store");
  PubSubBroker::Options options;
  options.delivery_retry = msec(5);
  options.max_delivery_attempts = 3;
  PubSubBroker broker(&sim, options);
  broker.subscribe("t", "store");
  broker.publish("t", "poison", "test-1");
  broker.publish("t", "good", "test-2");
  sim.run();
  // The queue made progress past the poison message; "good" also fails
  // (sink still failing after 3+3 attempts) and is dropped too.
  EXPECT_EQ(broker.dropped(), 2u);
  EXPECT_EQ(broker.delivery_failures(), 6u);  // 3 attempts per message
  EXPECT_EQ(broker.queue_depth("t"), 0u);     // no head-of-line wedge
}

TEST(PubSubTest, RejectPolicyReturns503WhenFull) {
  Simulation sim;
  Sink sink;
  sink.install(&sim, "store", sec(10));  // glacial consumer
  PubSubBroker::Options options;
  options.queue_capacity = 2;
  options.on_full = PubSubBroker::Options::FullPolicy::kReject;
  PubSubBroker broker(&sim, options);
  broker.subscribe("t", "store");

  std::vector<int> statuses;
  for (int i = 0; i < 5; ++i) {
    SimRequest req;
    req.method = "POST";
    req.uri = "/publish/t";
    req.request_id = "test-" + std::to_string(i);
    sim.inject("publisher", "messagebus", req,
               [&](const SimResponse& resp) {
                 statuses.push_back(resp.status);
               });
  }
  sim.run_until(sec(1));
  ASSERT_EQ(statuses.size(), 5u);
  size_t rejected = 0;
  for (const int s : statuses) {
    if (s == 503) ++rejected;
  }
  EXPECT_GE(rejected, 2u);  // capacity 2 + in-flight absorb the rest
  EXPECT_EQ(broker.rejected(), rejected);
}

TEST(PubSubTest, KafkapocalypseCascade) {
  // The Parse.ly / Stackdriver mechanism end-to-end: Gremlin crashes the
  // datastore; the broker's deliveries fail and retry; the topic queue
  // fills; publishers block on the bus; the whole pipeline stalls.
  Simulation sim;
  Sink cassandra;
  cassandra.install(&sim, "cassandra");
  PubSubBroker::Options options;
  options.queue_capacity = 4;
  options.on_full = PubSubBroker::Options::FullPolicy::kBlock;
  options.delivery_retry = msec(50);
  PubSubBroker broker(&sim, options);
  broker.subscribe("writes", "cassandra");

  topology::AppGraph graph;
  graph.add_edge("publisher", "messagebus");
  graph.add_edge("messagebus", "cassandra");
  control::TestSession session(&sim, graph);
  ASSERT_TRUE(session.apply(control::FailureSpec::crash("cassandra")).ok());

  size_t completed = 0;
  for (int i = 0; i < 20; ++i) {
    sim.schedule(msec(20) * i, [&sim, i, &completed] {
      SimRequest req;
      req.method = "POST";
      req.uri = "/publish/writes";
      req.request_id = "test-" + std::to_string(i);
      sim.inject("publisher", "messagebus", req,
                 [&completed](const SimResponse& resp) {
                   if (resp.status == 202) ++completed;
                 });
    });
  }
  // Permanent failure: the sim never quiesces; run for a bounded horizon.
  sim.run_until(sec(10));

  EXPECT_EQ(broker.delivered(), 0u);          // nothing reached cassandra
  EXPECT_GT(broker.delivery_failures(), 5u);  // the bus kept trying
  EXPECT_EQ(broker.queue_peak("writes"), 4u); // queue filled to capacity
  EXPECT_LT(completed, 20u);                  // publishers are stuck
  EXPECT_TRUE(cassandra.payloads.empty());
}

TEST(PubSubTest, RecoveryAfterTransientCrash) {
  // Crash rules with a bounded match count emulate a crash-recovery
  // failure (Section 3.1): the store comes back, the bus drains.
  Simulation sim;
  Sink store;
  store.install(&sim, "store");
  PubSubBroker::Options options;
  options.delivery_retry = msec(20);
  PubSubBroker broker(&sim, options);
  broker.subscribe("t", "store");

  faults::FaultRule rule = faults::FaultRule::abort_rule(
      "messagebus", "store", faults::kTcpReset, "*");
  rule.max_matches = 5;  // store is "down" for the first five deliveries
  ASSERT_TRUE(sim.find_service("messagebus")
                  ->instance(0)
                  .agent()
                  ->install_rules({rule})
                  .ok());

  for (int i = 0; i < 3; ++i) {
    broker.publish("t", "m" + std::to_string(i), "test-" + std::to_string(i));
  }
  sim.run();
  EXPECT_EQ(store.payloads.size(), 3u);  // all eventually delivered
  EXPECT_EQ(broker.delivery_failures(), 5u);
}

}  // namespace
}  // namespace gremlin::sim
