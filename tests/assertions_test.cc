// Unit tests for the assertion layer: queries, base assertions, withRule
// semantics, and the Combine state machine (Table 3, Section 4.2).
#include <gtest/gtest.h>

#include "control/assertions.h"

namespace gremlin::control {
namespace {

using logstore::FaultKind;
using logstore::LogRecord;
using logstore::MessageKind;

LogRecord req(int64_t ts_ms, const std::string& id,
              FaultKind fault = FaultKind::kNone) {
  LogRecord r;
  r.timestamp = msec(ts_ms);
  r.request_id = id;
  r.src = "a";
  r.dst = "b";
  r.kind = MessageKind::kRequest;
  r.fault = fault;
  return r;
}

LogRecord reply(int64_t ts_ms, const std::string& id, int status,
                int64_t latency_ms = 10, FaultKind fault = FaultKind::kNone,
                int64_t injected_ms = 0) {
  LogRecord r;
  r.timestamp = msec(ts_ms);
  r.request_id = id;
  r.src = "a";
  r.dst = "b";
  r.kind = MessageKind::kResponse;
  r.status = status;
  r.latency = msec(latency_ms);
  r.fault = fault;
  r.injected_delay = msec(injected_ms);
  return r;
}

// ----------------------------------------------------------------- queries

TEST(NumRequestsTest, CountsOnlyRequests) {
  RecordList list = {req(0, "t1"), reply(5, "t1", 200), req(10, "t2")};
  EXPECT_EQ(num_requests(list), 2u);
}

TEST(NumRequestsTest, TdeltaLimitsWindowFromFirstRequest) {
  RecordList list = {req(0, "t1"), req(50, "t2"), req(100, "t3"),
                     req(200, "t4")};
  EXPECT_EQ(num_requests(list, msec(100)), 3u);
  EXPECT_EQ(num_requests(list, msec(99)), 2u);
  EXPECT_EQ(num_requests(list, msec(500)), 4u);
}

TEST(NumRequestsTest, WithRuleFalseExcludesFaultedRequests) {
  RecordList list = {req(0, "t1"), req(10, "t2", FaultKind::kAbort),
                     req(20, "t3", FaultKind::kDelay)};
  EXPECT_EQ(num_requests(list, std::nullopt, /*with_rule=*/true), 3u);
  EXPECT_EQ(num_requests(list, std::nullopt, /*with_rule=*/false), 1u);
}

TEST(ReplyLatencyTest, WithRuleSubtraction) {
  // A 3s injected delay on a reply whose observed latency was 3.01s.
  RecordList list = {reply(0, "t1", 200, 3010, FaultKind::kDelay, 3000)};
  const auto with_rule = reply_latency(list, /*with_rule=*/true);
  ASSERT_EQ(with_rule.size(), 1u);
  EXPECT_EQ(with_rule[0], msec(3010));
  const auto without = reply_latency(list, /*with_rule=*/false);
  ASSERT_EQ(without.size(), 1u);
  EXPECT_EQ(without[0], msec(10));
}

TEST(ReplyLatencyTest, WithRuleFalseDropsSynthesizedReplies) {
  RecordList list = {reply(0, "t1", 503, 0, FaultKind::kAbort),
                     reply(10, "t2", 200, 12)};
  EXPECT_EQ(reply_latency(list, true).size(), 2u);
  const auto without = reply_latency(list, false);
  ASSERT_EQ(without.size(), 1u);
  EXPECT_EQ(without[0], msec(12));
}

TEST(ReplyLatencyTest, NegativeAdjustedClampsToZero) {
  RecordList list = {reply(0, "t1", 200, 5, FaultKind::kDelay, 10)};
  EXPECT_EQ(reply_latency(list, false)[0], kDurationZero);
}

TEST(RequestRateTest, ComputesPerSecond) {
  RecordList list;
  for (int i = 0; i < 11; ++i) {
    list.push_back(req(i * 100, "t" + std::to_string(i)));  // 10/s
  }
  EXPECT_NEAR(request_rate(list), 10.0, 1e-9);
}

TEST(RequestRateTest, DegenerateCases) {
  EXPECT_EQ(request_rate(RecordList{}), 0.0);
  EXPECT_EQ(request_rate(RecordList{req(0, "t1")}), 0.0);
  // Two requests at the same instant: no measurable window.
  EXPECT_EQ(request_rate(RecordList{req(0, "t1"), req(0, "t2")}), 0.0);
}

// --------------------------------------------------------- base assertions

TEST(AtMostRequestsTest, Basic) {
  RecordList list = {req(0, "t1"), req(10, "t2"), req(20, "t3")};
  EXPECT_TRUE(at_most_requests(list, msec(100), true, 3));
  EXPECT_FALSE(at_most_requests(list, msec(100), true, 2));
  EXPECT_TRUE(at_most_requests(list, msec(5), true, 1));
}

TEST(CheckStatusTest, Basic) {
  RecordList list = {reply(0, "t1", 503), reply(10, "t2", 503),
                     reply(20, "t3", 200)};
  EXPECT_TRUE(check_status(list, 503, 2));
  EXPECT_FALSE(check_status(list, 503, 3));
  EXPECT_TRUE(check_status(list, 200, 1));
  EXPECT_TRUE(check_status(list, 404, 0));  // zero matches trivially true
}

TEST(CheckStatusTest, WithRuleFalseIgnoresSynthesized) {
  RecordList list = {reply(0, "t1", 503, 0, FaultKind::kAbort),
                     reply(10, "t2", 503)};
  EXPECT_TRUE(check_status(list, 503, 2, true));
  EXPECT_FALSE(check_status(list, 503, 2, false));
  EXPECT_TRUE(check_status(list, 503, 1, false));
}

// ----------------------------------------------------------------- Combine

TEST(CombineTest, EmptyChainIsTrue) {
  Combine chain;
  EXPECT_TRUE(chain.evaluate(RecordList{}));
  EXPECT_TRUE(chain.evaluate(RecordList{req(0, "t1")}));
}

TEST(CombineTest, CheckStatusConsumesTriggerPrefix) {
  // The paper's circuit-breaker check: 5 failures, then at most 0 requests
  // within a minute.
  RecordList list;
  for (int i = 0; i < 5; ++i) {
    list.push_back(req(i * 10, "t" + std::to_string(i)));
    list.push_back(reply(i * 10 + 5, "t" + std::to_string(i), 503));
  }
  // A quiet minute, then traffic resumes.
  list.push_back(req(70000, "t9"));

  Combine good;
  good.then(Combine::check_status(503, 5, true))
      .then(Combine::at_most_requests(minutes(1), false, 0));
  EXPECT_TRUE(good.evaluate(list));

  // Violation: a request 10ms after the 5th failure.
  RecordList bad = list;
  bad.push_back(req(55, "t5"));
  std::sort(bad.begin(), bad.end(),
            [](const LogRecord& a, const LogRecord& b) {
              return a.timestamp < b.timestamp;
            });
  Combine check;
  check.then(Combine::check_status(503, 5, true))
      .then(Combine::at_most_requests(minutes(1), true, 0));
  EXPECT_FALSE(check.evaluate(bad));
}

TEST(CombineTest, FailsWhenStatusNeverReached) {
  RecordList list = {reply(0, "t1", 503), reply(10, "t2", 503)};
  Combine chain;
  chain.then(Combine::check_status(503, 5, true));
  EXPECT_FALSE(chain.evaluate(list));
}

TEST(CombineTest, AnchorAdvancesWithConsumption) {
  // After the failure at t=100, the window for the second step starts at
  // t=100, not at the list's first record.
  RecordList list = {req(0, "t1"), reply(100, "t1", 503),
                     req(100 + 40, "t2"),   // within 50ms of anchor
                     req(100 + 200, "t3")}; // outside
  Combine chain;
  chain.then(Combine::check_status(503, 1, true))
      .then(Combine::at_most_requests(msec(50), true, 1));
  EXPECT_TRUE(chain.evaluate(list));

  Combine strict;
  strict.then(Combine::check_status(503, 1, true))
      .then(Combine::at_most_requests(msec(50), true, 0));
  EXPECT_FALSE(strict.evaluate(list));
}

TEST(CombineTest, NoRequestsForWindow) {
  RecordList quiet = {reply(0, "t1", 503), req(200, "t2")};
  Combine chain;
  chain.then(Combine::check_status(503, 1, true))
      .then(Combine::no_requests_for(msec(100)));
  EXPECT_TRUE(chain.evaluate(quiet));

  RecordList noisy = {reply(0, "t1", 503), req(50, "t2")};
  Combine chain2;
  chain2.then(Combine::check_status(503, 1, true))
      .then(Combine::no_requests_for(msec(100)));
  EXPECT_FALSE(chain2.evaluate(noisy));

  // Boundary: a request at exactly anchor+window is allowed.
  RecordList boundary = {reply(0, "t1", 503), req(100, "t2")};
  Combine chain3;
  chain3.then(Combine::check_status(503, 1, true))
      .then(Combine::no_requests_for(msec(100)));
  EXPECT_TRUE(chain3.evaluate(boundary));
}

TEST(CombineTest, AtLeastRequests) {
  RecordList list = {reply(0, "t0", 503), req(10, "t1"), req(20, "t2"),
                     req(500, "t3")};
  Combine chain;
  chain.then(Combine::check_status(503, 1, true))
      .then(Combine::at_least_requests(msec(100), true, 2));
  EXPECT_TRUE(chain.evaluate(list));

  Combine chain2;
  chain2.then(Combine::check_status(503, 1, true))
      .then(Combine::at_least_requests(msec(100), true, 3));
  EXPECT_FALSE(chain2.evaluate(list));
}

TEST(CombineTest, ThreeStageChain) {
  // failures → quiet period → probe traffic: the full breaker lifecycle.
  RecordList list;
  for (int i = 0; i < 3; ++i) {
    list.push_back(reply(i * 10, "t" + std::to_string(i), 503));
  }
  list.push_back(req(20 + 5000, "probe"));
  Combine chain;
  chain.then(Combine::check_status(503, 3, true))
      .then(Combine::no_requests_for(sec(1)))
      .then(Combine::at_least_requests(sec(10), true, 1));
  EXPECT_TRUE(chain.evaluate(list));
}

TEST(SynthesizedPredicateTest, AbortRecordsAreSynthesized) {
  EXPECT_TRUE(
      synthesized_by_gremlin(reply(0, "t", 503, 0, FaultKind::kAbort)));
  EXPECT_FALSE(
      synthesized_by_gremlin(reply(0, "t", 200, 10, FaultKind::kDelay)));
  EXPECT_FALSE(synthesized_by_gremlin(reply(0, "t", 200)));
}

}  // namespace
}  // namespace gremlin::control
