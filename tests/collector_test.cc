// Tests for the background log collector and the extended service-level
// checks (latency SLO, error rate).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "control/collector.h"
#include "control/recipe.h"
#include "httpserver/client.h"
#include "httpserver/server.h"
#include "proxy/agent.h"

namespace gremlin::control {
namespace {

TEST(LogCollectorTest, CollectOnceDrainsSimAgents) {
  sim::Simulation sim;
  sim::ServiceConfig b;
  b.name = "b";
  sim.add_service(b);
  sim::ServiceConfig a;
  a.name = "a";
  a.dependencies = {"b"};
  sim.add_service(a);
  sim.inject("user", "a", sim::SimRequest{.request_id = "test-1"},
             [](const sim::SimResponse&) {});
  sim.run();

  LogCollector collector(&sim.deployment(), &sim.log_store());
  ASSERT_TRUE(collector.collect_once().ok());
  EXPECT_EQ(sim.log_store().size(), 4u);
  EXPECT_EQ(collector.records_shipped(), 4u);
  // Agents drained: nothing more to ship.
  ASSERT_TRUE(collector.collect_once().ok());
  EXPECT_EQ(collector.records_shipped(), 4u);
  EXPECT_EQ(collector.collections(), 2u);
}

TEST(LogCollectorTest, BackgroundThreadShipsProxyLogs) {
  httpserver::HttpServer origin([](const httpmsg::Request&) {
    return httpmsg::make_response(200, "ok");
  });
  auto origin_port = origin.start();
  ASSERT_TRUE(origin_port.ok());

  auto agent =
      std::make_shared<proxy::GremlinAgentProxy>("webapp", "webapp/0");
  proxy::Route route;
  route.destination = "backend";
  route.endpoints = {{"127.0.0.1", *origin_port}};
  agent->add_route(route);
  ASSERT_TRUE(agent->start().ok());

  topology::Deployment deployment;
  deployment.add_instance("webapp", agent);
  logstore::LogStore store;
  LogCollector collector(&deployment, &store, msec(20));
  collector.start();

  for (int i = 0; i < 5; ++i) {
    httpmsg::Request req;
    req.headers.set(httpmsg::kRequestIdHeader, "test-" + std::to_string(i));
    auto result = httpserver::HttpClient::fetch(
        "127.0.0.1", agent->route_port("backend"), std::move(req));
    ASSERT_FALSE(result.failed());
  }
  collector.stop();  // final drain happens here
  EXPECT_EQ(store.size(), 10u);  // 5 requests + 5 responses
  EXPECT_GE(collector.collections(), 1u);

  agent->stop();
  origin.stop();
}

TEST(LogCollectorTest, StartStopIdempotent) {
  topology::Deployment deployment;
  logstore::LogStore store;
  LogCollector collector(&deployment, &store, msec(10));
  collector.start();
  collector.start();  // no-op
  collector.stop();
  collector.stop();  // no-op
  collector.start();
  collector.stop();
}

// ------------------------------------------- extended checks on sim logs

struct SloApp {
  sim::Simulation sim;
  topology::AppGraph graph;

  SloApp() {
    sim::ServiceConfig b;
    b.name = "b";
    b.processing_time = msec(5);
    sim.add_service(b);
    sim::ServiceConfig a;
    a.name = "a";
    a.dependencies = {"b"};
    sim.add_service(a);
    graph.add_edge("user", "a");
    graph.add_edge("a", "b");
  }
};

TEST(ExtendedChecksTest, LatencySloPassesAndFails) {
  SloApp app;
  TestSession session(&app.sim, app.graph);
  session.run_load("user", "a", 50);
  ASSERT_TRUE(session.collect().ok());
  auto checker = session.checker();
  EXPECT_TRUE(checker.has_latency_slo("a", "b", 99, msec(50)).passed);
  EXPECT_FALSE(checker.has_latency_slo("a", "b", 99, msec(1)).passed);
  EXPECT_FALSE(
      checker.has_latency_slo("a", "ghost", 99, msec(50)).passed);
}

TEST(ExtendedChecksTest, LatencySloWithRuleSemantics) {
  SloApp app;
  TestSession session(&app.sim, app.graph);
  ASSERT_TRUE(
      session.apply(FailureSpec::delay_edge("a", "b", msec(500))).ok());
  session.run_load("user", "a", 20);
  ASSERT_TRUE(session.collect().ok());
  auto checker = session.checker();
  // Observed latency includes the injected delay...
  EXPECT_FALSE(
      checker.has_latency_slo("a", "b", 50, msec(100), true).passed);
  // ...but the service itself stayed fast.
  EXPECT_TRUE(
      checker.has_latency_slo("a", "b", 50, msec(100), false).passed);
}

TEST(ExtendedChecksTest, ErrorRate) {
  SloApp app;
  TestSession session(&app.sim, app.graph);
  FailureSpec spec = FailureSpec::abort_edge("a", "b", 503);
  spec.probability = 0.5;
  ASSERT_TRUE(session.apply(spec).ok());
  session.run_load("user", "a", 100);
  ASSERT_TRUE(session.collect().ok());
  auto checker = session.checker();
  EXPECT_FALSE(checker.error_rate_below("a", "b", 0.1).passed);
  EXPECT_TRUE(checker.error_rate_below("a", "b", 0.9).passed);
  EXPECT_FALSE(checker.error_rate_below("a", "ghost", 0.5).passed);
}

}  // namespace
}  // namespace gremlin::control
