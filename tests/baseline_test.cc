// Tests for the Chaos-Monkey-style randomized baseline.
#include <gtest/gtest.h>

#include "baseline/chaos.h"
#include "control/recipe.h"

namespace gremlin::baseline {
namespace {

using sim::ServiceConfig;
using sim::Simulation;

struct ChainApp {
  Simulation sim;
  topology::AppGraph graph;

  ChainApp() {
    ServiceConfig c;
    c.name = "c";
    sim.add_service(c);
    ServiceConfig b;
    b.name = "b";
    b.dependencies = {"c"};
    sim.add_service(b);
    ServiceConfig a;
    a.name = "a";
    a.dependencies = {"b"};
    sim.add_service(a);
    graph.add_edge("user", "a");
    graph.add_edge("a", "b");
    graph.add_edge("b", "c");
  }
};

TEST(ChaosMonkeyTest, KillsServicesOverHorizon) {
  ChainApp app;
  ChaosOptions options;
  options.mean_interval = msec(500);
  options.outage_duration = msec(200);
  options.seed = 7;
  options.candidates = {"b", "c"};
  ChaosMonkey chaos(&app.sim, app.graph, options);
  chaos.unleash(sec(10));
  app.sim.run();
  EXPECT_GT(chaos.events().size(), 5u);
  for (const auto& event : chaos.events()) {
    EXPECT_TRUE(event.service == "b" || event.service == "c");
  }
}

TEST(ChaosMonkeyTest, OutagesAreTransient) {
  ChainApp app;
  ChaosOptions options;
  options.mean_interval = sec(1);
  options.outage_duration = msec(100);
  options.seed = 3;
  options.candidates = {"b"};
  ChaosMonkey chaos(&app.sim, app.graph, options);
  chaos.unleash(sec(5));
  app.sim.run();
  ASSERT_FALSE(chaos.events().empty());
  // After the horizon all rules should be gone again.
  for (const auto& agent : app.sim.deployment().all_agents()) {
    auto* sim_agent = dynamic_cast<sim::SimAgent*>(agent.get());
    ASSERT_NE(sim_agent, nullptr);
    EXPECT_EQ(sim_agent->engine().rule_count(), 0u)
        << sim_agent->instance_id();
  }
}

TEST(ChaosMonkeyTest, FaultsAffectLiveTraffic) {
  ChainApp app;
  ChaosOptions options;
  options.mean_interval = msec(200);
  options.outage_duration = msec(400);
  options.seed = 11;
  options.candidates = {"b"};
  ChaosMonkey chaos(&app.sim, app.graph, options);
  chaos.unleash(sec(4));

  // Background traffic while chaos reigns.
  size_t failures = 0;
  for (int i = 0; i < 100; ++i) {
    app.sim.schedule(msec(40) * i, [&app, &failures, i] {
      app.sim.inject("user", "a",
                     sim::SimRequest{.request_id = "u" + std::to_string(i)},
                     [&failures](const sim::SimResponse& resp) {
                       if (resp.failed()) ++failures;
                     });
    });
  }
  app.sim.run();
  EXPECT_GT(failures, 0u);   // chaos broke something
  EXPECT_LT(failures, 100u); // but not everything (outages are transient)
}

TEST(ChaosMonkeyTest, DeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    ChainApp app;
    ChaosOptions options;
    options.seed = seed;
    options.mean_interval = msec(300);
    options.candidates = {"b", "c"};
    ChaosMonkey chaos(&app.sim, app.graph, options);
    chaos.unleash(sec(10));
    app.sim.run();
    std::vector<std::string> victims;
    for (const auto& event : chaos.events()) victims.push_back(event.service);
    return victims;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace gremlin::baseline
