// Tests for the pooled event queue (sim/event_queue.h): deterministic
// (time, sequence) ordering, FIFO ties at the same timestamp, free-list
// recycling, and the clear() contract that back-to-back runs on a reused
// queue replay identically.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace gremlin::sim {
namespace {

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(TimePoint{msec(30)}, [&order] { order.push_back(3); });
  queue.schedule_at(TimePoint{msec(10)}, [&order] { order.push_back(1); });
  queue.schedule_at(TimePoint{msec(20)}, [&order] { order.push_back(2); });

  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.next_time(), TimePoint{msec(10)});
  while (!queue.empty()) queue.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimestampRunsFifo) {
  EventQueue queue;
  const TimePoint at{msec(5)};
  std::vector<int> order;
  // Enough ties to exercise real sift_up/sift_down paths, not just the
  // trivial two-element case.
  for (int i = 0; i < 64; ++i) {
    queue.schedule_at(at, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) {
    EXPECT_EQ(queue.pop_and_run(), at);
  }
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, InterleavedTiesStillFifoPerTimestamp) {
  EventQueue queue;
  std::vector<std::pair<int, int>> order;  // (timestamp ms, insertion index)
  // Schedule out of time order with duplicates: t=2,1,2,1,...
  for (int i = 0; i < 32; ++i) {
    const int t = (i % 2 == 0) ? 2 : 1;
    queue.schedule_at(TimePoint{msec(t)},
                      [&order, t, i] { order.emplace_back(t, i); });
  }
  while (!queue.empty()) queue.pop_and_run();
  ASSERT_EQ(order.size(), 32u);
  // All t=1 events first, each group in insertion order.
  for (size_t i = 1; i < order.size(); ++i) {
    if (order[i].first == order[i - 1].first) {
      EXPECT_LT(order[i - 1].second, order[i].second);
    } else {
      EXPECT_LT(order[i - 1].first, order[i].first);
    }
  }
}

TEST(EventQueueTest, PopRecyclesSlotBeforeActionRuns) {
  EventQueue queue;
  // A self-rescheduling chain: each action schedules the next from inside
  // pop_and_run. The pool must never grow past one slab because the popped
  // slot is released before the action executes.
  int hops = 0;
  struct Chain {
    EventQueue* queue;
    int* hops;
    void operator()() const {
      if (++*hops < 1000) {
        queue->schedule_at(TimePoint{msec(*hops)}, Chain{queue, hops});
      }
    }
  };
  queue.schedule_at(TimePoint{msec(0)}, Chain{&queue, &hops});
  const size_t capacity_after_first = [&] {
    queue.pop_and_run();
    return queue.pool_capacity();
  }();
  while (!queue.empty()) queue.pop_and_run();
  EXPECT_EQ(hops, 1000);
  EXPECT_EQ(queue.pool_capacity(), capacity_after_first);
}

TEST(EventQueueTest, PoolIsReusedAfterClear) {
  EventQueue queue;
  for (int i = 0; i < 300; ++i) {
    queue.schedule_at(TimePoint{msec(i)}, [] {});
  }
  const size_t capacity = queue.pool_capacity();
  EXPECT_GE(capacity, 300u);

  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.free_count(), capacity);

  // Refilling to the same depth must come entirely from the free list.
  for (int i = 0; i < 300; ++i) {
    queue.schedule_at(TimePoint{msec(i)}, [] {});
  }
  EXPECT_EQ(queue.pool_capacity(), capacity);
  while (!queue.empty()) queue.pop_and_run();
}

TEST(EventQueueTest, ClearDropsPendingAndReplaysIdentically) {
  EventQueue queue;
  const auto run_once = [&queue] {
    std::vector<int> order;
    const TimePoint at{msec(1)};
    for (int i = 0; i < 16; ++i) {
      queue.schedule_at(at, [&order, i] { order.push_back(i); });
    }
    while (!queue.empty()) queue.pop_and_run();
    return order;
  };

  // Abandon a run mid-flight (half the events still pending), as the
  // campaign runner does when it reuses a simulation. clear() must drop the
  // pending events and reset the insertion sequence so the next run on the
  // same queue replays exactly like a run on a fresh queue.
  for (int i = 0; i < 16; ++i) {
    queue.schedule_at(TimePoint{msec(2)}, [] {});
  }
  for (int i = 0; i < 8; ++i) queue.pop_and_run();
  queue.clear();
  EXPECT_TRUE(queue.empty());

  const std::vector<int> reused = run_once();
  EventQueue fresh;
  std::vector<int> expected;
  for (int i = 0; i < 16; ++i) {
    fresh.schedule_at(TimePoint{msec(1)}, [&expected, i] {
      expected.push_back(i);
    });
  }
  while (!fresh.empty()) fresh.pop_and_run();
  EXPECT_EQ(reused, expected);
}

TEST(EventQueueTest, ClearReturnsEveryNodeToTheFreeList) {
  EventQueue queue;
  // Grow the pool across several slabs, drain part of the heap, then clear
  // mid-flight. free_count() is arithmetic (capacity - heap size); walking
  // the actual free list proves no node was leaked off both structures.
  for (int i = 0; i < 900; ++i) {
    queue.schedule_at(TimePoint{msec(i)}, [] {});
  }
  for (int i = 0; i < 450; ++i) queue.pop_and_run();
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.free_list_length(), queue.pool_capacity());
}

TEST(EventQueueTest, FreeListLengthMatchesFreeCountMidFlight) {
  EventQueue queue;
  for (int i = 0; i < 300; ++i) {
    queue.schedule_at(TimePoint{msec(i)}, [] {});
  }
  for (int i = 0; i < 100; ++i) queue.pop_and_run();
  EXPECT_EQ(queue.free_list_length(), queue.free_count());
}

}  // namespace
}  // namespace gremlin::sim
