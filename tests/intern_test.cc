// Tests for the name-interning layer (common/intern.h): symbol identity and
// stability, the find-without-inserting path, and lock-free concurrent
// reads while writers grow the table — the contract the parallel campaign
// workers rely on.
#include "common/intern.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace gremlin {
namespace {

TEST(SymbolTest, DefaultIsEmptyString) {
  const Symbol s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.id(), 0u);
  EXPECT_EQ(s.view(), "");
  EXPECT_EQ(s, Symbol(""));
}

TEST(SymbolTest, InterningDeduplicates) {
  const Symbol a("intern-dedup-service");
  const Symbol b(std::string("intern-dedup-service"));
  const Symbol c(std::string_view("intern-dedup-service"));
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.id(), c.id());
  EXPECT_EQ(a, b);
}

TEST(SymbolTest, DistinctStringsGetDistinctIds) {
  const Symbol a("intern-distinct-a");
  const Symbol b("intern-distinct-b");
  EXPECT_NE(a, b);
  EXPECT_NE(a.id(), b.id());
}

TEST(SymbolTest, ViewIsStableAcrossTableGrowth) {
  const Symbol s("intern-stability-probe");
  const std::string_view before = s.view();
  const char* data_before = before.data();
  // Push the table through several chunk allocations; the previously
  // returned view must keep pointing at the same bytes.
  for (int i = 0; i < 3000; ++i) {
    Symbol grow("intern-stability-filler-" + std::to_string(i));
    ASSERT_FALSE(grow.empty());
  }
  EXPECT_EQ(s.view(), "intern-stability-probe");
  EXPECT_EQ(s.view().data(), data_before);
}

TEST(SymbolTest, ComparesAgainstStringLikes) {
  const Symbol s("intern-compare");
  EXPECT_EQ(s, "intern-compare");
  EXPECT_EQ("intern-compare", s);
  EXPECT_EQ(s, std::string("intern-compare"));
  EXPECT_NE(s, "intern-compare-not");
  EXPECT_EQ("prefix-" + s, "prefix-intern-compare");
}

TEST(SymbolTableTest, FindDoesNotIntern) {
  SymbolTable& table = SymbolTable::global();
  const size_t size_before = table.size();
  EXPECT_FALSE(table.find("intern-find-never-inserted").has_value());
  EXPECT_EQ(table.size(), size_before);

  const Symbol s("intern-find-inserted");
  const auto found = table.find("intern-find-inserted");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, s);
}

TEST(SymbolTableTest, OutOfRangeIdResolvesToEmpty) {
  EXPECT_EQ(SymbolTable::global().view(0xfffffff0u), "");
}

// Readers resolve symbols lock-free while writer threads grow the table;
// under TSan (tools/check.sh) this is also a data-race check on the
// acquire/release publication of new chunks.
TEST(SymbolTableTest, ConcurrentInternAndRead) {
  constexpr int kWriters = 4;
  constexpr int kNamesPerWriter = 2000;
  std::atomic<bool> stop{false};

  const Symbol hot("intern-concurrent-hot");
  std::thread reader([&stop, hot] {
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_EQ(hot.view(), "intern-concurrent-hot");
    }
  });

  std::vector<std::thread> writers;
  std::vector<std::vector<Symbol>> produced(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w, &produced] {
      for (int i = 0; i < kNamesPerWriter; ++i) {
        // Half the names collide across writers, half are unique, so both
        // the dedup path and the append path run concurrently.
        const std::string name =
            i % 2 == 0 ? "intern-concurrent-shared-" + std::to_string(i)
                       : "intern-concurrent-w" + std::to_string(w) + "-" +
                             std::to_string(i);
        produced[w].push_back(Symbol(name));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Same text -> same id, regardless of which writer got there first.
  for (int i = 0; i < kNamesPerWriter; i += 2) {
    const std::string name = "intern-concurrent-shared-" + std::to_string(i);
    std::set<uint32_t> ids;
    for (int w = 0; w < kWriters; ++w) ids.insert(produced[w][i].id());
    EXPECT_EQ(ids.size(), 1u) << name;
    EXPECT_EQ(produced[0][i], name);
  }
}

}  // namespace
}  // namespace gremlin
