// Tests for the recipe DSL: lexing, parsing, and end-to-end interpretation
// against simulated applications, including the `require` chaining that
// reproduces the paper's conditional multi-step scenarios.
#include <gtest/gtest.h>

#include "apps/wordpress.h"
#include "dsl/interp.h"
#include "dsl/parser.h"

namespace gremlin::dsl {
namespace {

// -------------------------------------------------------------------- lexer

TEST(LexerTest, TokenKinds) {
  auto tokens = lex(R"(graph { a -> b } scenario "x" { delay(a, b,
      interval=100ms, probability=0.75) })");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), TokenKind::kIdent);
  EXPECT_EQ(kinds.back(), TokenKind::kEof);
  // Spot-check specific tokens.
  EXPECT_EQ((*tokens)[0].text, "graph");
  EXPECT_EQ((*tokens)[2].text, "a");
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kArrow);
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[7].text, "x");
}

TEST(LexerTest, DurationsAndNumbers) {
  auto tokens = lex("100ms 3s 1min 2h 42 0.25");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kDuration);
  EXPECT_EQ((*tokens)[0].duration, msec(100));
  EXPECT_EQ((*tokens)[1].duration, sec(3));
  EXPECT_EQ((*tokens)[2].duration, minutes(1));
  EXPECT_EQ((*tokens)[3].duration, hours(2));
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*tokens)[4].number, 42);
  EXPECT_DOUBLE_EQ((*tokens)[5].number, 0.25);
}

TEST(LexerTest, CommentsIgnored) {
  auto tokens = lex("# a comment\nident # trailing\n");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 2u);  // ident + EOF
  EXPECT_EQ((*tokens)[0].text, "ident");
  EXPECT_EQ((*tokens)[0].line, 2);
}

TEST(LexerTest, GlobCharactersInIdentifiers) {
  auto tokens = lex("test-* svc?x");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "test-*");
  EXPECT_EQ((*tokens)[1].text, "svc?x");
}

TEST(LexerTest, RejectsBadInput) {
  EXPECT_FALSE(lex("\"unterminated").ok());
  EXPECT_FALSE(lex("5parsecs").ok());
  EXPECT_FALSE(lex("@").ok());
  EXPECT_FALSE(lex("- x").ok());
}

// ------------------------------------------------------------------- parser

TEST(ParserTest, GraphAndScenarios) {
  auto file = parse(R"(
    graph {
      user -> frontend -> db
      frontend -> cache
    }
    scenario "first" {
      crash(db)
      load(client=user, target=frontend, count=10)
      collect
      assert has_timeouts(frontend, 1s)
    }
    scenario "second" {
      overload(cache)
    }
  )");
  ASSERT_TRUE(file.ok()) << file.error().message;
  EXPECT_EQ(file->graph.service_count(), 4u);
  EXPECT_TRUE(file->graph.has_edge("user", "frontend"));
  EXPECT_TRUE(file->graph.has_edge("frontend", "db"));
  EXPECT_TRUE(file->graph.has_edge("frontend", "cache"));
  ASSERT_EQ(file->scenarios.size(), 2u);
  const auto& first = file->scenarios[0];
  EXPECT_EQ(first.name, "first");
  ASSERT_EQ(first.commands.size(), 4u);
  EXPECT_EQ(first.commands[0].name, "crash");
  EXPECT_EQ(first.commands[1].name, "load");
  EXPECT_EQ(first.commands[2].name, "collect");
  EXPECT_EQ(first.commands[3].name, "has_timeouts");
}

TEST(ParserTest, RequirePrefixAndNamedArgs) {
  auto file = parse(R"(
    graph { a -> b }
    scenario "s" {
      require has_bounded_retries(a, b, max_tries=5)
      partition(group=[a, b])
    }
  )");
  ASSERT_TRUE(file.ok()) << file.error().message;
  const auto& cmds = file->scenarios[0].commands;
  EXPECT_TRUE(cmds[0].required);
  EXPECT_EQ(cmds[0].named("max_tries")->number, 5);
  ASSERT_NE(cmds[1].named("group"), nullptr);
  EXPECT_EQ(cmds[1].named("group")->list,
            (std::vector<std::string>{"a", "b"}));
}

TEST(ParserTest, RejectsMalformedRecipes) {
  EXPECT_FALSE(parse("").ok());                          // no scenarios
  EXPECT_FALSE(parse("graph { a -> }").ok());            // dangling arrow
  EXPECT_FALSE(parse("scenario { }").ok());              // missing name
  EXPECT_FALSE(parse("scenario \"s\" { crash( }").ok()); // bad args
  EXPECT_FALSE(parse("bogus { }").ok());                 // unknown block
  EXPECT_FALSE(parse("graph { a -> b }").ok());          // graph only
}

TEST(ParserTest, SummaryDescribesStructure) {
  auto file = parse(R"(graph { a -> b }
    scenario "s" { crash(b) require has_timeouts(a, 1s) })");
  ASSERT_TRUE(file.ok());
  const std::string summary = file->summary();
  EXPECT_NE(summary.find("2 services"), std::string::npos);
  EXPECT_NE(summary.find("scenario \"s\""), std::string::npos);
  EXPECT_NE(summary.find("require has_timeouts"), std::string::npos);
}

// -------------------------------------------------------------- interpreter

TEST(InterpTest, AutoCreatedAppRunsEndToEnd) {
  sim::Simulation sim;
  Interpreter interp(&sim);
  auto outcome = interp.run_source(R"(
    graph { user -> frontend -> backend }
    scenario "crash backend" {
      crash(backend)
      load(client=user, target=frontend, count=20, gap=10ms)
      collect
      assert has_timeouts(frontend, 1s)
      assert has_circuit_breaker(frontend, backend, threshold=5,
                                 tdelta=1s, success_threshold=1)
    }
  )");
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  ASSERT_EQ(outcome->scenarios.size(), 1u);
  const auto& s = outcome->scenarios[0];
  EXPECT_EQ(s.rules_installed, 1u);  // crash: frontend -> backend only
  EXPECT_EQ(s.requests_injected, 20u);
  ASSERT_EQ(s.checks.size(), 2u);
  // Auto-created services are naive: the breaker check must fail; the
  // timeout check passes because resets fail fast.
  EXPECT_TRUE(s.checks[0].passed) << s.checks[0].detail;
  EXPECT_FALSE(s.checks[1].passed) << s.checks[1].detail;
  EXPECT_FALSE(outcome->all_passed());
}

TEST(InterpTest, RequireAbortsScenario) {
  sim::Simulation sim;
  Interpreter interp(&sim);
  auto outcome = interp.run_source(R"(
    graph { user -> a -> b }
    scenario "chained" {
      crash(b)
      load(client=user, target=a, count=20)
      collect
      require has_circuit_breaker(a, b, threshold=5, tdelta=1s)
      # never reached: the naive auto-created service has no breaker, so
      # the required check fails and the scenario aborts here.
      overload(b)
      assert has_timeouts(a, 1s)
    }
  )");
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  const auto& s = outcome->scenarios[0];
  EXPECT_TRUE(s.aborted);
  EXPECT_EQ(s.checks.size(), 1u);  // the timeout check never ran
  EXPECT_NE(s.abort_reason.find("HasCircuitBreaker"), std::string::npos);
}

TEST(InterpTest, RunsAgainstPrebuiltApp) {
  // Drive the WordPress case study from a recipe file.
  sim::Simulation sim;
  auto graph = apps::build_wordpress_app(&sim);
  (void)graph;  // the recipe declares its own (matching) graph
  Interpreter interp(&sim);
  auto outcome = interp.run_source(R"(
    graph {
      user -> wordpress
      wordpress -> elasticsearch
      wordpress -> mysql
    }
    scenario "elasticpress has no timeout" {
      delay(wordpress, elasticsearch, interval=2s)
      load(client=user, target=wordpress, count=20, gap=20ms)
      collect
      assert has_timeouts(wordpress, 1s)
    }
  )");
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  const auto& s = outcome->scenarios[0];
  ASSERT_EQ(s.checks.size(), 1u);
  EXPECT_FALSE(s.checks[0].passed);  // the paper's finding
  const std::string report = outcome->report();
  EXPECT_NE(report.find("FAIL"), std::string::npos);
}

TEST(InterpTest, ScenariosRunIndependently) {
  sim::Simulation sim;
  Interpreter interp(&sim);
  auto outcome = interp.run_source(R"(
    graph { user -> a -> b }
    scenario "one" {
      crash(b)
      load(client=user, target=a, count=5)
      collect
    }
    scenario "two" {
      # Faults from scenario one were cleared; traffic flows again.
      load(client=user, target=a, count=5, prefix="test2-")
      collect
    }
  )");
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  EXPECT_EQ(outcome->scenarios.size(), 2u);
  // Verify scenario two's traffic reached b: query the central store.
  const auto reqs = sim.log_store().get_requests("a", "b", "test2-*");
  EXPECT_EQ(reqs.size(), 5u);
  for (const auto& r : reqs) {
    EXPECT_EQ(r.fault, logstore::FaultKind::kNone);
  }
}

TEST(InterpTest, UnknownCommandRejected) {
  sim::Simulation sim;
  Interpreter interp(&sim);
  auto outcome = interp.run_source(R"(
    graph { a -> b }
    scenario "s" { explode(b) }
  )");
  EXPECT_FALSE(outcome.ok());
  EXPECT_NE(outcome.error().message.find("unknown command"),
            std::string::npos);
}

TEST(InterpTest, MissingArgumentRejected) {
  sim::Simulation sim;
  Interpreter interp(&sim);
  auto outcome = interp.run_source(R"(
    graph { a -> b }
    scenario "s" { disconnect(a) }
  )");
  EXPECT_FALSE(outcome.ok());
  EXPECT_NE(outcome.error().message.find("missing argument"),
            std::string::npos);
}

TEST(InterpTest, AutocreateOffRequiresServices) {
  sim::Simulation sim;
  Interpreter interp(&sim);
  interp.set_autocreate(false);
  auto outcome = interp.run_source(R"(
    graph { a -> b }
    scenario "s" { crash(b) }
  )");
  EXPECT_FALSE(outcome.ok());
}

TEST(InterpTest, ModifyAndFakeSuccessCommands) {
  sim::Simulation sim;
  Interpreter interp(&sim);
  auto outcome = interp.run_source(R"(
    graph { user -> a -> b }
    scenario "tamper" {
      fake_success(b, match="key", replace="badkey")
      modify(a, b, match="foo", replace="bar")
      load(client=user, target=a, count=5)
      collect
    }
  )");
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  EXPECT_EQ(outcome->scenarios[0].rules_installed, 2u);
}

}  // namespace
}  // namespace gremlin::dsl
