// Integration tests for the real-network data plane on loopback: the HTTP
// server/client pair, the sidecar proxy's fault primitives (Abort incl. TCP
// reset, Delay, Modify), flow scoping by request ID, observation logging,
// the REST control API, and remote orchestration through RemoteAgentHandle.
#include <gtest/gtest.h>

#include <chrono>

#include "control/orchestrator.h"
#include "httpserver/client.h"
#include "httpserver/server.h"
#include "proxy/control_api.h"

namespace gremlin::proxy {
namespace {

using faults::FaultRule;
using httpmsg::Request;
using httpmsg::Response;
using httpserver::HttpClient;
using httpserver::HttpServer;
using logstore::MessageKind;

Request request_with_id(const std::string& id, const std::string& target = "/") {
  Request req;
  req.target = target;
  req.headers.set(httpmsg::kRequestIdHeader, id);
  return req;
}

// Origin server echoing method, path and body.
std::unique_ptr<HttpServer> make_origin(uint16_t* port) {
  auto server = std::make_unique<HttpServer>([](const Request& req) {
    Response resp = httpmsg::make_response(
        200, "echo:" + req.method + ":" + req.target + ":" + req.body);
    return resp;
  });
  auto started = server->start();
  EXPECT_TRUE(started.ok());
  *port = started.value_or(0);
  return server;
}

TEST(HttpServerTest, ServesAndCounts) {
  uint16_t port = 0;
  auto origin = make_origin(&port);
  ASSERT_NE(port, 0);

  auto result = HttpClient::fetch("127.0.0.1", port,
                                  request_with_id("test-1", "/hello"));
  EXPECT_FALSE(result.failed());
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(result.response.body, "echo:GET:/hello:");
  EXPECT_EQ(origin->requests_served(), 1u);
}

TEST(HttpClientTest, ConnectionRefusedReported) {
  // Port 1 on loopback is almost certainly closed.
  auto result = HttpClient::fetch("127.0.0.1", 1, Request{}, msec(500));
  EXPECT_TRUE(result.connection_failed);
}

struct ProxyFixture {
  uint16_t origin_port = 0;
  std::unique_ptr<HttpServer> origin;
  std::unique_ptr<GremlinAgentProxy> agent;
  uint16_t proxy_port = 0;

  ProxyFixture() {
    origin = make_origin(&origin_port);
    agent = std::make_unique<GremlinAgentProxy>("webapp", "webapp/0");
    Route route;
    route.destination = "backend";
    route.endpoints = {{"127.0.0.1", origin_port}};
    agent->add_route(route);
    EXPECT_TRUE(agent->start().ok());
    proxy_port = agent->route_port("backend");
    EXPECT_NE(proxy_port, 0);
  }
  ~ProxyFixture() {
    agent->stop();
    origin->stop();
  }

  httpserver::FetchResult fetch(const Request& req,
                                Duration timeout = sec(5)) {
    return HttpClient::fetch("127.0.0.1", proxy_port, req, timeout);
  }
};

TEST(ProxyTest, TransparentForwarding) {
  ProxyFixture f;
  auto result = f.fetch(request_with_id("test-1", "/data"));
  EXPECT_FALSE(result.failed());
  EXPECT_EQ(result.response.body, "echo:GET:/data:");

  auto records = f.agent->fetch_records();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].kind, MessageKind::kRequest);
  EXPECT_EQ((*records)[0].src, "webapp");
  EXPECT_EQ((*records)[0].dst, "backend");
  EXPECT_EQ((*records)[0].request_id, "test-1");
  EXPECT_EQ((*records)[1].kind, MessageKind::kResponse);
  EXPECT_EQ((*records)[1].status, 200);
}

TEST(ProxyTest, AbortRuleSynthesizesError) {
  ProxyFixture f;
  ASSERT_TRUE(f.agent
                  ->install_rules({FaultRule::abort_rule(
                      "webapp", "backend", 503, "test-*")})
                  .ok());
  auto result = f.fetch(request_with_id("test-1"));
  EXPECT_EQ(result.response.status, 503);
  EXPECT_EQ(result.response.body, "gremlin-abort");
  // The origin never saw the request.
  EXPECT_EQ(f.origin->requests_served(), 0u);
}

TEST(ProxyTest, AbortSparesUnmatchedFlows) {
  ProxyFixture f;
  ASSERT_TRUE(f.agent
                  ->install_rules({FaultRule::abort_rule(
                      "webapp", "backend", 503, "test-*")})
                  .ok());
  auto result = f.fetch(request_with_id("prod-1"));
  EXPECT_EQ(result.response.status, 200);
  EXPECT_EQ(f.origin->requests_served(), 1u);
}

TEST(ProxyTest, TcpResetObservedByClient) {
  ProxyFixture f;
  ASSERT_TRUE(f.agent
                  ->install_rules({FaultRule::abort_rule(
                      "webapp", "backend", faults::kTcpReset)})
                  .ok());
  auto result = f.fetch(request_with_id("test-1"));
  EXPECT_TRUE(result.connection_failed);
  auto records = f.agent->fetch_records();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[1].status, 0);
}

TEST(ProxyTest, DelayRuleAddsLatency) {
  ProxyFixture f;
  ASSERT_TRUE(
      f.agent
          ->install_rules({FaultRule::delay_rule("webapp", "backend",
                                                 msec(200))})
          .ok());
  const auto start = std::chrono::steady_clock::now();
  auto result = f.fetch(request_with_id("test-1"));
  const auto elapsed = std::chrono::duration_cast<Duration>(
      std::chrono::steady_clock::now() - start);
  EXPECT_FALSE(result.failed());
  EXPECT_GE(elapsed, msec(200));
  auto records = f.agent->fetch_records();
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)[1].injected_delay, msec(200));
  EXPECT_GE((*records)[1].latency, msec(200));
}

TEST(ProxyTest, ModifyRuleRewritesBody) {
  ProxyFixture f;
  ASSERT_TRUE(f.agent
                  ->install_rules({FaultRule::modify_rule(
                      "webapp", "backend", "key", "badkey")})
                  .ok());
  Request req = request_with_id("test-1", "/submit");
  req.method = "POST";
  req.body = "key=value";
  auto result = f.fetch(req);
  EXPECT_EQ(result.response.body, "echo:POST:/submit:badkey=value");
}

TEST(ProxyTest, ResponseSideModify) {
  ProxyFixture f;
  FaultRule rule =
      FaultRule::modify_rule("webapp", "backend", "echo", "tampered");
  rule.on = MessageKind::kResponse;
  ASSERT_TRUE(f.agent->install_rules({rule}).ok());
  auto result = f.fetch(request_with_id("test-1", "/x"));
  EXPECT_EQ(result.response.body, "tampered:GET:/x:");
}

TEST(ProxyTest, UpstreamDownLooksLikeReset) {
  ProxyFixture f;
  f.origin->stop();  // kill the upstream
  auto result = f.fetch(request_with_id("test-1"), sec(2));
  EXPECT_TRUE(result.connection_failed);
  auto records = f.agent->fetch_records();
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[1].status, 0);
}

TEST(ProxyTest, RoundRobinAcrossEndpoints) {
  uint16_t port_a = 0, port_b = 0;
  auto origin_a = std::make_unique<HttpServer>(
      [](const Request&) { return httpmsg::make_response(200, "a"); });
  auto origin_b = std::make_unique<HttpServer>(
      [](const Request&) { return httpmsg::make_response(200, "b"); });
  port_a = origin_a->start().value_or(0);
  port_b = origin_b->start().value_or(0);
  ASSERT_NE(port_a, 0);
  ASSERT_NE(port_b, 0);

  GremlinAgentProxy agent("svc", "svc/0");
  Route route;
  route.destination = "dual";
  route.endpoints = {{"127.0.0.1", port_a}, {"127.0.0.1", port_b}};
  agent.add_route(route);
  ASSERT_TRUE(agent.start().ok());

  std::string bodies;
  for (int i = 0; i < 4; ++i) {
    auto result = HttpClient::fetch("127.0.0.1", agent.route_port("dual"),
                                    request_with_id("test"));
    bodies += result.response.body;
  }
  agent.stop();
  origin_a->stop();
  origin_b->stop();
  EXPECT_EQ(bodies, "abab");
}

// ------------------------------------------------------------- control API

TEST(ControlApiTest, RuleLifecycleOverRest) {
  ProxyFixture f;
  ControlApiServer api(f.agent.get());
  auto api_port = api.start();
  ASSERT_TRUE(api_port.ok());

  // Health.
  auto health = HttpClient::fetch("127.0.0.1", *api_port,
                                  request_with_id("", "/gremlin/v1/health"));
  EXPECT_EQ(health.response.status, 200);
  auto health_json = Json::parse(health.response.body);
  ASSERT_TRUE(health_json.ok());
  EXPECT_EQ((*health_json)["service"].as_string(), "webapp");

  // Install a rule via POST.
  Request post;
  post.method = "POST";
  post.target = "/gremlin/v1/rules";
  post.body = FaultRule::abort_rule("webapp", "backend", 503, "test-*")
                  .to_json()
                  .dump();
  auto install = HttpClient::fetch("127.0.0.1", *api_port, post);
  EXPECT_EQ(install.response.status, 200);
  EXPECT_EQ(f.agent->engine().rule_count(), 1u);

  // It takes effect on the data path.
  auto aborted = f.fetch(request_with_id("test-1"));
  EXPECT_EQ(aborted.response.status, 503);

  // List.
  auto list = HttpClient::fetch("127.0.0.1", *api_port,
                                request_with_id("", "/gremlin/v1/rules"));
  auto list_json = Json::parse(list.response.body);
  ASSERT_TRUE(list_json.ok());
  EXPECT_EQ(list_json->size(), 1u);

  // Records are visible and clearable.
  auto recs = HttpClient::fetch("127.0.0.1", *api_port,
                                request_with_id("", "/gremlin/v1/records"));
  auto recs_json = Json::parse(recs.response.body);
  ASSERT_TRUE(recs_json.ok());
  EXPECT_EQ(recs_json->size(), 2u);

  Request del;
  del.method = "DELETE";
  del.target = "/gremlin/v1/rules";
  auto cleared = HttpClient::fetch("127.0.0.1", *api_port, del);
  EXPECT_EQ(cleared.response.status, 200);
  EXPECT_EQ(f.agent->engine().rule_count(), 0u);
}

TEST(ControlApiTest, RejectsBadInput) {
  ProxyFixture f;
  ControlApiServer api(f.agent.get());
  auto api_port = api.start();
  ASSERT_TRUE(api_port.ok());

  Request post;
  post.method = "POST";
  post.target = "/gremlin/v1/rules";
  post.body = "{not json";
  EXPECT_EQ(HttpClient::fetch("127.0.0.1", *api_port, post).response.status,
            400);

  post.body = R"({"id":"x","source":"a","destination":"b","type":"warp"})";
  EXPECT_EQ(HttpClient::fetch("127.0.0.1", *api_port, post).response.status,
            400);

  EXPECT_EQ(HttpClient::fetch("127.0.0.1", *api_port,
                              request_with_id("", "/nope"))
                .response.status,
            404);
}

TEST(ControlApiTest, RemoteAgentHandleDrivesProxy) {
  // The SDN picture end-to-end on a real network: the orchestrator programs
  // a remote agent through its REST API.
  ProxyFixture f;
  ControlApiServer api(f.agent.get());
  auto api_port = api.start();
  ASSERT_TRUE(api_port.ok());

  topology::Deployment deployment;
  deployment.add_instance(
      "webapp", std::make_shared<RemoteAgentHandle>("127.0.0.1", *api_port,
                                                    "webapp/0"));
  control::FailureOrchestrator orch(&deployment);
  ASSERT_TRUE(
      orch.install({FaultRule::abort_rule("webapp", "backend", 503)}).ok());
  EXPECT_EQ(f.agent->engine().rule_count(), 1u);

  auto aborted = f.fetch(request_with_id("test-1"));
  EXPECT_EQ(aborted.response.status, 503);

  logstore::LogStore store;
  ASSERT_TRUE(orch.collect_logs(&store).ok());
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.get_replies("webapp", "backend")[0].status, 503);
  // Agent buffers were drained by the collect.
  auto remaining = f.agent->fetch_records();
  ASSERT_TRUE(remaining.ok());
  EXPECT_TRUE(remaining->empty());

  ASSERT_TRUE(orch.clear_rules().ok());
  EXPECT_EQ(f.agent->engine().rule_count(), 0u);

  auto handle = std::make_shared<RemoteAgentHandle>("127.0.0.1", *api_port,
                                                    "webapp/0");
  EXPECT_TRUE(handle->healthy());
}

}  // namespace
}  // namespace gremlin::proxy
