// End-to-end tests for NetworkPartition and FakeSuccess scenarios on the
// simulator, plus DSL coverage for the extended assertion commands.
#include <gtest/gtest.h>

#include "control/recipe.h"
#include "dsl/interp.h"

namespace gremlin::control {
namespace {

// user → gateway → {svc-east → db-east, svc-west → db-west}
struct TwoZoneApp {
  sim::Simulation sim;
  topology::AppGraph graph;

  TwoZoneApp() {
    for (const char* name : {"db-east", "db-west"}) {
      sim::ServiceConfig db;
      db.name = name;
      sim.add_service(db);
    }
    sim::ServiceConfig east;
    east.name = "svc-east";
    east.dependencies = {"db-east"};
    sim.add_service(east);
    sim::ServiceConfig west;
    west.name = "svc-west";
    west.dependencies = {"db-west"};
    sim.add_service(west);
    sim::ServiceConfig gateway;
    gateway.name = "gateway";
    gateway.dependencies = {"svc-east", "svc-west"};
    sim.add_service(gateway);
    graph.add_edge("user", "gateway");
    graph.add_edge("gateway", "svc-east");
    graph.add_edge("gateway", "svc-west");
    graph.add_edge("svc-east", "db-east");
    graph.add_edge("svc-west", "db-west");
  }
};

TEST(PartitionTest, SeversExactlyTheCut) {
  TwoZoneApp app;
  TestSession session(&app.sim, app.graph);
  // Partition the west zone away from the rest.
  ASSERT_TRUE(
      session.apply(FailureSpec::partition({"svc-west", "db-west"})).ok());
  session.run_load("user", "gateway", 10);
  ASSERT_TRUE(session.collect().ok());

  auto checker = session.checker();
  // Traffic inside the east side flows; the gateway→west edge is severed.
  const auto east_replies = checker.get_replies("svc-east", "db-east");
  ASSERT_FALSE(east_replies.empty());
  for (const auto& r : east_replies) EXPECT_FALSE(r.failed());

  const auto west_replies = checker.get_replies("gateway", "svc-west");
  ASSERT_FALSE(west_replies.empty());
  for (const auto& r : west_replies) {
    EXPECT_EQ(r.status, 0);  // TCP reset at the cut
  }
  // Intra-west traffic never happened (nothing crossed into the zone).
  EXPECT_TRUE(checker.get_requests("svc-west", "db-west").empty());
}

TEST(PartitionTest, HealsWithApplyFor) {
  TwoZoneApp app;
  TestSession session(&app.sim, app.graph);
  ASSERT_TRUE(session
                  .apply_for(FailureSpec::partition({"svc-west", "db-west"}),
                             msec(500))
                  .ok());
  LoadOptions load;
  load.count = 20;
  load.gap = msec(50);
  const auto result = session.run_load("user", "gateway", load);
  // First ~10 requests see the partition (gateway fails west), later ones
  // flow cleanly.
  EXPECT_GT(result.failures, 0u);
  EXPECT_LT(result.failures, 20u);
  EXPECT_EQ(result.statuses.back(), 200);
}

TEST(FakeSuccessTest, TampersPayloadKeepsStatus) {
  // FakeSuccess (Section 5): responses stay 200 but the payload is
  // corrupted — input-validation bugs surface downstream.
  sim::Simulation sim;
  sim::ServiceConfig kv;
  kv.name = "kv";
  kv.handler = [](std::shared_ptr<sim::RequestContext> ctx) {
    ctx->respond(200, "key=value");
  };
  sim.add_service(kv);
  std::string seen;
  sim::ServiceConfig app_svc;
  app_svc.name = "app";
  app_svc.handler = [&seen](std::shared_ptr<sim::RequestContext> ctx) {
    ctx->call("kv", [ctx, &seen](const sim::SimResponse& resp) {
      seen = resp.body;
      // Naive input handling: crashes on unexpected keys.
      ctx->respond(resp.body.find("key=") == 0 ? 200 : 500, resp.body);
    });
  };
  sim.add_service(app_svc);
  topology::AppGraph graph;
  graph.add_edge("user", "app");
  graph.add_edge("app", "kv");

  TestSession session(&sim, graph);
  ASSERT_TRUE(
      session.apply(FailureSpec::fake_success("kv", "key", "badkey")).ok());
  const auto result = session.run_load("user", "app", 5);
  EXPECT_EQ(seen, "badkey=value");
  EXPECT_EQ(result.failures, 5u);  // the tampered payload broke the app
}

TEST(DslExtendedChecksTest, LatencySloAndErrorRateCommands) {
  sim::Simulation sim;
  dsl::Interpreter interp(&sim);
  auto outcome = interp.run_source(R"(
    graph { user -> a -> b }
    scenario "slo" {
      delay(a, b, interval=300ms)
      load(client=user, target=a, count=20)
      collect
      assert has_latency_slo(a, b, percentile=50, bound=100ms)
      assert has_latency_slo(a, b, percentile=50, bound=100ms,
                             with_rule=false)
      assert error_rate_below(user, a, 0.01)
    }
  )");
  ASSERT_TRUE(outcome.ok()) << outcome.error().message;
  const auto& checks = outcome->scenarios[0].checks;
  ASSERT_EQ(checks.size(), 3u);
  EXPECT_FALSE(checks[0].passed);  // observed latency includes the delay
  EXPECT_TRUE(checks[1].passed);   // untampered latency is fast
  EXPECT_TRUE(checks[2].passed);   // delays aren't failures
}

}  // namespace
}  // namespace gremlin::control
