// Warm-world execution tests: the byte-identity contract (a reused,
// deep-reset Simulation produces exactly the results a cold one would),
// reset hygiene (nothing leaks from one experiment into the next), the
// fault-rule compilation cache, and the Symbol-keyed Simulation surface.
#include <gtest/gtest.h>

#include <vector>

#include "campaign/app_spec.h"
#include "campaign/experiment.h"
#include "campaign/runner.h"
#include "campaign/warm_world.h"
#include "common/intern.h"
#include "control/rule_cache.h"
#include "control/translator.h"
#include "search/pruner.h"
#include "search/search.h"
#include "sim/simulation.h"

namespace gremlin::campaign {
namespace {

control::LoadOptions small_load() {
  control::LoadOptions load;
  load.count = 30;
  load.gap = msec(5);
  return load;
}

std::vector<Experiment> buggy_tree_sweep(uint64_t seed = 42) {
  const AppSpec app = AppSpec::buggy_tree();
  SweepOptions options;
  options.load = small_load();
  options.seed = seed;
  return generate_sweep(app, app.probe_graph(), options);
}

Experiment quickstart_abort(uint64_t seed = 42) {
  Experiment e;
  e.id = "abort(serviceA->serviceB)";
  e.app = AppSpec::quickstart(3, msec(50));
  e.failures.push_back(
      control::FailureSpec::abort_edge("serviceA", "serviceB"));
  e.client = "user";
  e.target = "serviceA";
  e.load = small_load();
  e.checks.push_back(CheckSpec::max_user_failures(1000));
  e.seed = seed;
  return e;
}

// --- the headline contract: warm == cold, byte for byte -------------------

TEST(WarmColdDifferentialTest, CampaignByteIdenticalAcrossThreadCounts) {
  // The hard invariant of warm-world execution: for every thread count and
  // with early exit on or off, a campaign run on reused simulations is
  // byte-identical — fingerprint() AND verdict_fingerprint() — to one that
  // constructs a fresh simulation per experiment.
  const auto experiments =
      replicate_seeds(buggy_tree_sweep(), {7, 1234567});
  for (const bool early_exit : {true, false}) {
    RunnerOptions cold_options;
    cold_options.threads = 1;
    cold_options.early_exit = early_exit;
    cold_options.warm_worlds = false;
    const CampaignResult cold = CampaignRunner(cold_options).run(experiments);

    for (const int threads : {1, 4, 8}) {
      RunnerOptions warm_options;
      warm_options.threads = threads;
      warm_options.early_exit = early_exit;
      warm_options.warm_worlds = true;
      const CampaignResult warm =
          CampaignRunner(warm_options).run(experiments);
      ASSERT_EQ(warm.experiments.size(), cold.experiments.size());
      EXPECT_EQ(warm.fingerprint(), cold.fingerprint())
          << "threads=" << threads << " early_exit=" << early_exit;
      EXPECT_EQ(warm.verdict_fingerprint(), cold.verdict_fingerprint())
          << "threads=" << threads << " early_exit=" << early_exit;
    }
  }
}

TEST(WarmColdDifferentialTest, WarmWorldRunMatchesRunOnePerExperiment) {
  // Single-world form of the contract: the Nth warm run on one world equals
  // run_one on a fresh simulation, for every N (so reset() restores the
  // exact cold-start state, not just a "mostly clean" one).
  const auto experiments = replicate_seeds(buggy_tree_sweep(), {3, 99});
  WarmWorld world(experiments[0].app);
  ExecOptions exec;
  // Seed replication lists each spec's seeds consecutively; testing pairs
  // exercises both cache misses (new spec) and hits (same spec, new seed).
  for (size_t i = 0; i + 1 < experiments.size(); i += 6) {
    for (const size_t j : {i, i + 1}) {
      const ExperimentResult warm = world.run(experiments[j], exec);
      const ExperimentResult cold =
          CampaignRunner::run_one(experiments[j], exec);
      EXPECT_EQ(warm.fingerprint(), cold.fingerprint()) << experiments[j].id;
      EXPECT_EQ(warm.verdict_fingerprint(), cold.verdict_fingerprint())
          << experiments[j].id;
    }
  }
  EXPECT_GT(world.runs(), 1u);
  // Seed replication repeats every failure spec, so the rule cache must
  // have been exercised, not just populated.
  EXPECT_GT(world.rule_cache().hits(), 0u);
}

TEST(WarmColdDifferentialTest, SearchWarmMatchesCold) {
  // End-to-end parity for `gremlin search`: warm mode (baseline replay,
  // campaign batch, and shrink probes all on reused worlds, with the
  // baseline's world kept alive for the pruner) reports exactly the cold
  // funnel and findings, at several thread counts.
  search::SearchOptions cold_options;
  cold_options.load = small_load();
  cold_options.seed = 7;
  cold_options.threads = 1;
  cold_options.warm = false;
  const search::SearchOutcome cold =
      search::run_search(AppSpec::redundant(), cold_options);
  ASSERT_TRUE(cold.ok) << cold.error;

  for (const int threads : {1, 4, 8}) {
    search::SearchOptions warm_options = cold_options;
    warm_options.threads = threads;
    warm_options.warm = true;
    const search::SearchOutcome warm =
        search::run_search(AppSpec::redundant(), warm_options);
    ASSERT_TRUE(warm.ok) << warm.error;

    EXPECT_EQ(warm.baseline_requests, cold.baseline_requests);
    EXPECT_EQ(warm.observed_edges, cold.observed_edges);
    EXPECT_EQ(warm.observed_paths, cold.observed_paths);
    EXPECT_EQ(warm.generated, cold.generated);
    EXPECT_EQ(warm.pruned, cold.pruned);
    EXPECT_EQ(warm.ran, cold.ran);
    EXPECT_EQ(warm.passed, cold.passed);
    EXPECT_EQ(warm.failed, cold.failed);
    EXPECT_EQ(warm.errors, cold.errors);
    ASSERT_EQ(warm.findings.size(), cold.findings.size());
    for (size_t i = 0; i < warm.findings.size(); ++i) {
      EXPECT_EQ(warm.findings[i].minimal, cold.findings[i].minimal);
      EXPECT_EQ(warm.findings[i].signature, cold.findings[i].signature);
      EXPECT_EQ(warm.findings[i].occurrences, cold.findings[i].occurrences);
      EXPECT_FALSE(warm.findings[i].flaky);
    }
  }
}

TEST(WarmColdDifferentialTest, PrunerBaselineWarmMatchesCold) {
  // The kept-alive baseline world: run_baseline on a WarmWorld must produce
  // the cold baseline's result and the same observed call graph (pruning
  // decisions depend on it edge-for-edge).
  const Experiment e = quickstart_abort();
  const search::Baseline cold = search::run_baseline(e);
  WarmWorld world(e.app);
  const search::Baseline warm = search::run_baseline(e, &world);

  EXPECT_EQ(warm.result.fingerprint(), cold.result.fingerprint());
  EXPECT_EQ(warm.call_graph.edges.size(), cold.call_graph.edges.size());
  EXPECT_EQ(warm.call_graph.paths.size(), cold.call_graph.paths.size());
  for (const auto& edge : cold.call_graph.edges) {
    EXPECT_TRUE(warm.call_graph.observed(edge.first, edge.second))
        << edge.first << "->" << edge.second;
  }
  // The world stayed warm: a subsequent faulted run reuses it and still
  // matches cold execution.
  ExecOptions exec;
  EXPECT_EQ(world.run(e, exec).fingerprint(),
            CampaignRunner::run_one(e, exec).fingerprint());
}

TEST(WarmColdDifferentialTest, WorldPoolHandlesManyDistinctApps) {
  // More distinct AppSpecs than the per-worker world cap: eviction and
  // rebuild must stay invisible in the results.
  std::vector<Experiment> experiments;
  for (int retries = 1; retries <= 6; ++retries) {
    Experiment e = quickstart_abort(100 + retries);
    e.id = "retries=" + std::to_string(retries);
    e.app = AppSpec::quickstart(retries, msec(50));
    experiments.push_back(std::move(e));
    experiments.push_back(experiments.back());  // revisit the same app
  }
  RunnerOptions warm{.threads = 1, .warm_worlds = true};
  RunnerOptions cold{.threads = 1, .warm_worlds = false};
  EXPECT_EQ(CampaignRunner(warm).run(experiments).fingerprint(),
            CampaignRunner(cold).run(experiments).fingerprint());
}

// --- cold fallbacks -------------------------------------------------------

TEST(WarmWorldFallbackTest, CustomExperimentsRunCold) {
  Experiment e;
  e.id = "custom";
  e.app = AppSpec::quickstart(3, msec(50));
  e.custom = [](control::TestSession* session) {
    session->apply(control::FailureSpec::abort_edge("serviceA", "serviceB"));
    const auto load = session->run_load("user", "serviceA", 20);
    (void)session->collect();
    control::CheckResult saw_load;
    saw_load.name = "SawLoad";
    saw_load.passed = load.total() == 20;
    return std::vector<control::CheckResult>{saw_load};
  };
  WarmWorld world(e.app);
  ExecOptions exec;
  const ExperimentResult warm = world.run(e, exec);
  EXPECT_TRUE(warm.ok);
  EXPECT_EQ(warm.fingerprint(),
            CampaignRunner::run_one(e, exec).fingerprint());
  // The custom hook may mutate the deployment arbitrarily, so it never
  // touches (or builds) the long-lived world.
  EXPECT_EQ(world.simulation(), nullptr);
  EXPECT_EQ(world.runs(), 0u);
}

TEST(WarmWorldFallbackTest, NonReusableSpecsRunCold) {
  Experiment e = quickstart_abort();
  e.app.reusable = false;
  WarmWorld world(e.app);
  ExecOptions exec;
  const ExperimentResult warm = world.run(e, exec);
  EXPECT_EQ(warm.fingerprint(),
            CampaignRunner::run_one(e, exec).fingerprint());
  EXPECT_EQ(world.simulation(), nullptr);
  EXPECT_EQ(world.runs(), 0u);
}

// --- reset hygiene --------------------------------------------------------

TEST(ResetHygieneTest, ResetRestoresColdStartState) {
  // Drive a faulted, early-exiting experiment through a world, then reset
  // and inspect every piece of state the next experiment could observe.
  Experiment e = quickstart_abort();
  WarmWorld world(e.app);
  ExecOptions exec;
  exec.early_exit = true;
  ASSERT_TRUE(world.run(e, exec).ok);

  sim::Simulation* sim = world.simulation();
  ASSERT_NE(sim, nullptr);
  // The run lazily created the edge client as a real service.
  EXPECT_NE(sim->find_service("user"), nullptr);

  sim->reset(e.seed);

  // Clock, queue, and pool: virtual time back to zero, no pending events,
  // every pooled event slot back on the free list.
  EXPECT_EQ(sim->now(), TimePoint{});
  EXPECT_FALSE(sim->has_pending_events());
  EXPECT_FALSE(sim->stop_requested());
  const sim::EventQueue& queue = sim->event_queue();
  EXPECT_EQ(queue.free_list_length(), queue.pool_capacity());

  // LogStore: empty, with interned service names still resolvable (the
  // symbol table is process-global and survives by design).
  EXPECT_EQ(sim->log_store().size(), 0u);
  EXPECT_EQ(sim->log_store().dropped(), 0u);
  EXPECT_TRUE(SymbolTable::global().find("serviceA").has_value());

  // The lazily created edge client survives the reset — rebuilt clients
  // cost ~11 allocations per experiment — and is reset in place below like
  // every baseline service. An idle client is invisible to results (no
  // events, no records, fingerprints carry no symbol ids), so the
  // byte-identity proof at the end still holds against a cold build.
  EXPECT_NE(sim->find_service("user"), nullptr);

  // Per-service state: breakers closed, bulkheads idle, queues empty,
  // counters zero, no fault rules installed, no buffered observations.
  for (const char* name : {"serviceA", "serviceB", "user"}) {
    sim::SimService* svc = sim->find_service(name);
    ASSERT_NE(svc, nullptr) << name;
    for (size_t i = 0; i < svc->instance_count(); ++i) {
      EXPECT_TRUE(svc->instance(i).pristine()) << name;
      const auto& agent = svc->instance(i).agent();
      EXPECT_EQ(agent->engine().rule_count(), 0u) << name;
      EXPECT_EQ(agent->buffered_records(), 0u) << name;
    }
  }

  // And the proof it all worked: the next run is byte-identical to cold.
  EXPECT_EQ(world.run(e, exec).fingerprint(),
            CampaignRunner::run_one(e, exec).fingerprint());
}

// --- rule-compilation cache -----------------------------------------------

TEST(RuleCacheTest, HitsReplayIdenticalRulesAndAdvanceSequence) {
  const AppSpec app = AppSpec::quickstart(3, msec(50));
  const topology::AppGraph graph = app.probe_graph();
  const control::FailureSpec spec =
      control::FailureSpec::abort_edge("serviceA", "serviceB");

  // A warm world constructs one translator per experiment (sequence starts
  // at 0 each time) but shares the cache across them. Replaying the same
  // spec in a second "experiment" must hit and reproduce exactly the rules
  // an uncached translator would emit.
  control::RecipeTranslator direct(&graph);
  const auto reference = direct.translate(spec);
  ASSERT_TRUE(reference.ok());

  control::RuleCache cache;
  control::RecipeTranslator first_run(&graph);
  const auto miss = cache.translate(first_run, spec);
  control::RecipeTranslator second_run(&graph);
  const auto hit = cache.translate(second_run, spec);
  ASSERT_TRUE(miss.ok());
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  // The hit advanced the sequence exactly as a direct translation would, so
  // rule IDs of any subsequent spec stay byte-identical.
  EXPECT_EQ(second_run.sequence(), direct.sequence());

  ASSERT_EQ(miss.value().size(), reference.value().size());
  ASSERT_EQ(hit.value().size(), reference.value().size());
  for (size_t i = 0; i < reference.value().size(); ++i) {
    EXPECT_EQ(miss.value()[i].id, reference.value()[i].id);
    EXPECT_EQ(hit.value()[i].id, reference.value()[i].id);
  }
}

TEST(RuleCacheTest, DistinctSpecsAndPositionsMiss) {
  const AppSpec app = AppSpec::quickstart(3, msec(50));
  const topology::AppGraph graph = app.probe_graph();
  control::RecipeTranslator tr(&graph);
  control::RuleCache cache;
  ASSERT_TRUE(
      cache.translate(tr, control::FailureSpec::abort_edge("serviceA",
                                                           "serviceB"))
          .ok());
  ASSERT_TRUE(
      cache.translate(tr, control::FailureSpec::crash("serviceB"))
          .ok());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(RuleCacheTest, FingerprintSeparatesSpecs) {
  // The cache key starts from FailureSpec::fingerprint(): specs that differ
  // in any field must not collide.
  const auto a = control::FailureSpec::abort_edge("x", "y");
  auto b = a;
  b.error = a.error + 1;
  auto c = a;
  c.probability = 0.5;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  EXPECT_EQ(a.fingerprint(), control::FailureSpec::abort_edge("x", "y")
                                 .fingerprint());
}

// --- Symbol-keyed Simulation surface --------------------------------------

TEST(SymbolLookupTest, SymbolAndStringLookupsAgree) {
  sim::Simulation sim;
  sim::ServiceConfig cfg;
  cfg.name = "alpha";
  cfg.instances = 2;
  sim::SimService* added = sim.add_service(std::move(cfg));

  const Symbol alpha("alpha");
  EXPECT_EQ(sim.find_service(alpha), added);
  EXPECT_EQ(sim.find_service("alpha"), added);
  EXPECT_EQ(sim.find_service(std::string("alpha")), added);
  EXPECT_EQ(added->symbol(), alpha);

  // Unknown names: neither form finds anything, and the string form must
  // not intern (lookups never grow the global table).
  EXPECT_EQ(sim.find_service("warm-world-unknown-name"), nullptr);
  EXPECT_FALSE(SymbolTable::global().find("warm-world-unknown-name")
                   .has_value());
  EXPECT_EQ(sim.find_service(Symbol("beta-not-registered")), nullptr);

  // pick_instance: both forms walk the same round-robin cursor.
  sim::ServiceInstance* first = sim.pick_instance(alpha);
  sim::ServiceInstance* second = sim.pick_instance("alpha");
  EXPECT_NE(first, nullptr);
  EXPECT_NE(second, nullptr);
  EXPECT_NE(first, second);  // 2 instances, consecutive picks alternate
  EXPECT_EQ(sim.pick_instance(alpha), first);
}

}  // namespace
}  // namespace gremlin::campaign
