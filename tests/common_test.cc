// Unit tests for the common module: durations, glob matching, strings,
// deterministic RNG, and the JSON document model.
#include <gtest/gtest.h>

#include <set>

#include "common/duration.h"
#include "common/glob.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/strings.h"

namespace gremlin {
namespace {

// ---------------------------------------------------------------- Duration

TEST(DurationTest, ParsesAllUnits) {
  EXPECT_EQ(parse_duration("250us").value(), usec(250));
  EXPECT_EQ(parse_duration("100ms").value(), msec(100));
  EXPECT_EQ(parse_duration("1s").value(), sec(1));
  EXPECT_EQ(parse_duration("3sec").value(), sec(3));
  EXPECT_EQ(parse_duration("1min").value(), minutes(1));
  EXPECT_EQ(parse_duration("2m").value(), minutes(2));
  EXPECT_EQ(parse_duration("1h").value(), hours(1));
  EXPECT_EQ(parse_duration("2hours").value(), hours(2));
}

TEST(DurationTest, ParsesFractions) {
  EXPECT_EQ(parse_duration("1.5s").value(), msec(1500));
  EXPECT_EQ(parse_duration("0.25ms").value(), usec(250));
}

TEST(DurationTest, RejectsGarbage) {
  EXPECT_FALSE(parse_duration("").ok());
  EXPECT_FALSE(parse_duration("ms").ok());
  EXPECT_FALSE(parse_duration("5").ok());
  EXPECT_FALSE(parse_duration("5parsecs").ok());
  EXPECT_FALSE(parse_duration("abc").ok());
}

TEST(DurationTest, FormatsLargestExactUnit) {
  EXPECT_EQ(format_duration(hours(1)), "1h");
  EXPECT_EQ(format_duration(minutes(90)), "90min");
  EXPECT_EQ(format_duration(sec(3)), "3s");
  EXPECT_EQ(format_duration(msec(100)), "100ms");
  EXPECT_EQ(format_duration(usec(250)), "250us");
  EXPECT_EQ(format_duration(kDurationZero), "0s");
}

TEST(DurationTest, ParseFormatRoundTrip) {
  for (const char* text : {"250us", "100ms", "3s", "5min", "2h"}) {
    auto parsed = parse_duration(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(format_duration(parsed.value()), text);
  }
}

// -------------------------------------------------------------------- Glob

struct GlobCase {
  const char* pattern;
  const char* text;
  bool expect;
};

class GlobMatchTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobMatchTest, Matches) {
  const GlobCase& c = GetParam();
  EXPECT_EQ(glob_match(c.pattern, c.text), c.expect)
      << "pattern=" << c.pattern << " text=" << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, GlobMatchTest,
    ::testing::Values(
        GlobCase{"*", "", true}, GlobCase{"*", "anything", true},
        GlobCase{"test-*", "test-123", true},
        GlobCase{"test-*", "test-", true},
        GlobCase{"test-*", "prod-123", false},
        GlobCase{"*-123", "test-123", true},
        GlobCase{"*-123", "test-1234", false},
        GlobCase{"a*b*c", "aXbYc", true}, GlobCase{"a*b*c", "abc", true},
        GlobCase{"a*b*c", "acb", false},
        GlobCase{"?", "x", true}, GlobCase{"?", "", false},
        GlobCase{"?", "xy", false},
        GlobCase{"test-??", "test-42", true},
        GlobCase{"test-??", "test-4", false},
        GlobCase{"[abc]x", "bx", true}, GlobCase{"[abc]x", "dx", false},
        GlobCase{"[a-z]*", "hello", true},
        GlobCase{"[a-z]*", "Hello", false},
        GlobCase{"[!0-9]*", "x1", true}, GlobCase{"[!0-9]*", "11", false},
        GlobCase{"\\*", "*", true}, GlobCase{"\\*", "x", false},
        GlobCase{"test-*-end", "test-mid-end", true},
        GlobCase{"test-*-end", "test-end", false},
        GlobCase{"**", "anything", true},
        GlobCase{"", "", true}, GlobCase{"", "x", false}));

TEST(GlobTest, MatchAllDetection) {
  EXPECT_TRUE(Glob("*").match_all());
  EXPECT_FALSE(Glob("test-*").match_all());
  EXPECT_TRUE(Glob().match_all());
}

// Property: a pattern equal to the literal text (no metacharacters) always
// matches exactly that text.
TEST(GlobTest, LiteralPatternsMatchThemselves) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    std::string s;
    const int len = static_cast<int>(rng.next_below(12));
    for (int j = 0; j < len; ++j) {
      s.push_back(static_cast<char>('a' + rng.next_below(26)));
    }
    EXPECT_TRUE(glob_match(s, s)) << s;
    EXPECT_EQ(glob_match(s, s + "x"), false) << s;
  }
}

// ----------------------------------------------------------------- Strings

TEST(StringsTest, Basics) {
  EXPECT_EQ(to_lower("AbC-1"), "abc-1");
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_TRUE(starts_with("gremlin-agent", "gremlin"));
  EXPECT_FALSE(starts_with("gr", "gremlin"));
  EXPECT_TRUE(ends_with("request_id", "_id"));
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("a", "ab"));
}

TEST(StringsTest, SplitAndJoin) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(join({"a", "b", "c"}, "->"), "a->b->c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringsTest, Replace) {
  std::string s = "key=value key=value";
  EXPECT_TRUE(replace_first(&s, "key", "badkey"));
  EXPECT_EQ(s, "badkey=value key=value");
  s = "key=value key=value";
  EXPECT_EQ(replace_all(&s, "key", "badkey"), 2);
  EXPECT_EQ(s, "badkey=value badkey=value");
  EXPECT_EQ(replace_all(&s, "missing", "x"), 0);
  EXPECT_FALSE(replace_first(&s, "", "x"));
}

// --------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng base(9);
  Rng a = base.fork("agent-a");
  Rng b = base.fork("agent-b");
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, BernoulliRespectsExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequencyNearP) {
  Rng rng(2);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.25)) ++hits;
  }
  const double freq = static_cast<double>(hits) / n;
  EXPECT_NEAR(freq, 0.25, 0.02);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 11u);  // all values hit over 1000 draws
}

TEST(RngTest, ExponentialMean) {
  Rng rng(4);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.exponential(100.0);
  EXPECT_NEAR(total / n, 100.0, 5.0);
}

// -------------------------------------------------------------------- JSON

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").value().is_null());
  EXPECT_EQ(Json::parse("true").value().as_bool(), true);
  EXPECT_EQ(Json::parse("false").value().as_bool(true), false);
  EXPECT_EQ(Json::parse("42").value().as_int(), 42);
  EXPECT_EQ(Json::parse("-7").value().as_int(), -7);
  EXPECT_DOUBLE_EQ(Json::parse("2.5").value().as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").value().as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").value().as_string(), "hi");
}

TEST(JsonTest, ParsesNested) {
  auto j = Json::parse(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value()["a"].size(), 3u);
  EXPECT_EQ(j.value()["a"].as_array()[2]["b"].as_string(), "c");
  EXPECT_TRUE(j.value()["d"].is_null());
  EXPECT_TRUE(j.value().contains("d"));
  EXPECT_FALSE(j.value().contains("missing"));
}

TEST(JsonTest, StringEscapes) {
  auto j = Json::parse(R"("line\n\t\"quote\" \\ A")");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value().as_string(), "line\n\t\"quote\" \\ A");
}

TEST(JsonTest, UnicodeEscapeUtf8) {
  auto j = Json::parse(R"("é€")");  // é €
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j.value().as_string(), "\xc3\xa9\xe2\x82\xac");
}

TEST(JsonTest, RejectsMalformed) {
  EXPECT_FALSE(Json::parse("").ok());
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("[1,]").ok());
  EXPECT_FALSE(Json::parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::parse("tru").ok());
  EXPECT_FALSE(Json::parse("\"unterminated").ok());
  EXPECT_FALSE(Json::parse("1 2").ok());
  EXPECT_FALSE(Json::parse("-").ok());
}

TEST(JsonTest, DumpParseRoundTrip) {
  Json obj = Json::object();
  obj["name"] = "gremlin";
  obj["count"] = 42;
  obj["ratio"] = 0.25;
  obj["flag"] = true;
  obj["nothing"] = nullptr;
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  obj["list"] = arr;

  for (int indent : {0, 2}) {
    auto reparsed = Json::parse(obj.dump(indent));
    ASSERT_TRUE(reparsed.ok()) << "indent=" << indent;
    EXPECT_EQ(reparsed.value(), obj);
  }
}

TEST(JsonTest, MissingKeyReturnsNull) {
  const Json obj = Json::object();
  EXPECT_TRUE(obj["anything"].is_null());
  const Json arr = Json::array();
  EXPECT_TRUE(arr["key"].is_null());  // non-object access is safe
}

}  // namespace
}  // namespace gremlin
