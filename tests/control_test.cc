// Integration tests for the control plane: recipe translation against the
// application graph, orchestration onto multi-instance deployments, log
// collection, and the end-to-end pattern checks of Table 3 running against
// simulated applications.
#include <gtest/gtest.h>

#include <set>

#include "control/recipe.h"

namespace gremlin::control {
namespace {

using faults::FaultKind;
using faults::FaultRule;
using sim::ServiceConfig;
using sim::Simulation;
using sim::SimulationConfig;

topology::AppGraph diamond_graph() {
  topology::AppGraph g;
  g.add_edge("user", "frontend");
  g.add_edge("frontend", "auth");
  g.add_edge("frontend", "catalog");
  g.add_edge("auth", "db");
  g.add_edge("catalog", "db");
  return g;
}

// ------------------------------------------------------------- translation

TEST(TranslatorTest, DisconnectProducesSingleAbort) {
  RecipeTranslator tr(diamond_graph());
  auto rules = tr.translate(FailureSpec::disconnect("frontend", "auth"));
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 1u);
  EXPECT_EQ((*rules)[0].type, FaultKind::kAbort);
  EXPECT_EQ((*rules)[0].source, "frontend");
  EXPECT_EQ((*rules)[0].destination, "auth");
  EXPECT_EQ((*rules)[0].abort_code, 503);
  EXPECT_EQ((*rules)[0].pattern, "test-*");
}

TEST(TranslatorTest, CrashCoversAllDependents) {
  RecipeTranslator tr(diamond_graph());
  auto rules = tr.translate(FailureSpec::crash("db"));
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 2u);  // auth→db, catalog→db
  std::set<std::string> sources;
  for (const auto& r : *rules) {
    sources.insert(r.source);
    EXPECT_EQ(r.destination, "db");
    EXPECT_EQ(r.type, FaultKind::kAbort);
    EXPECT_EQ(r.abort_code, faults::kTcpReset);
  }
  EXPECT_EQ(sources, (std::set<std::string>{"auth", "catalog"}));
}

TEST(TranslatorTest, HangUsesLongDelay) {
  RecipeTranslator tr(diamond_graph());
  auto rules = tr.translate(FailureSpec::hang("db"));
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 2u);
  for (const auto& r : *rules) {
    EXPECT_EQ(r.type, FaultKind::kDelay);
    EXPECT_EQ(r.delay_interval, hours(1));
  }
}

TEST(TranslatorTest, OverloadEmitsConditionalPair) {
  RecipeTranslator tr(diamond_graph());
  auto rules = tr.translate(FailureSpec::overload("db", msec(100), 0.25));
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 4u);  // (abort, delay) per dependent
  // Order matters: abort precedes delay for each dependent edge.
  EXPECT_EQ((*rules)[0].type, FaultKind::kAbort);
  EXPECT_DOUBLE_EQ((*rules)[0].probability, 0.25);
  EXPECT_EQ((*rules)[1].type, FaultKind::kDelay);
  EXPECT_DOUBLE_EQ((*rules)[1].probability, 1.0);
  EXPECT_EQ((*rules)[1].delay_interval, msec(100));
}

TEST(TranslatorTest, FakeSuccessTargetsResponses) {
  RecipeTranslator tr(diamond_graph());
  auto rules =
      tr.translate(FailureSpec::fake_success("db", "key", "badkey"));
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 2u);
  for (const auto& r : *rules) {
    EXPECT_EQ(r.type, FaultKind::kModify);
    EXPECT_EQ(r.on, logstore::MessageKind::kResponse);
    EXPECT_EQ(r.body_pattern, "key");
    EXPECT_EQ(r.replace_bytes, "badkey");
  }
}

TEST(TranslatorTest, PartitionSeversTheCut) {
  RecipeTranslator tr(diamond_graph());
  auto rules =
      tr.translate(FailureSpec::partition({"user", "frontend", "auth"}));
  ASSERT_TRUE(rules.ok());
  // Crossing edges: frontend→catalog, auth→db.
  ASSERT_EQ(rules->size(), 2u);
  for (const auto& r : *rules) {
    EXPECT_EQ(r.abort_code, faults::kTcpReset);
  }
}

TEST(TranslatorTest, UnknownServiceRejected) {
  RecipeTranslator tr(diamond_graph());
  EXPECT_FALSE(tr.translate(FailureSpec::crash("nonexistent")).ok());
  EXPECT_FALSE(
      tr.translate(FailureSpec::disconnect("frontend", "nope")).ok());
  EXPECT_FALSE(
      tr.translate(FailureSpec::partition({"frontend", "ghost"})).ok());
}

TEST(TranslatorTest, TranslateAllConcatenatesInOrder) {
  RecipeTranslator tr(diamond_graph());
  auto rules = tr.translate_all({FailureSpec::disconnect("frontend", "auth"),
                                 FailureSpec::crash("db")});
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 3u);
  EXPECT_EQ((*rules)[0].destination, "auth");
}

TEST(TranslatorTest, CrashOfLeaflessServiceYieldsNoRules) {
  topology::AppGraph g;
  g.add_service("lonely");
  RecipeTranslator tr(g);
  auto rules = tr.translate(FailureSpec::crash("lonely"));
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());
}

// ----------------------------------------------------------- orchestration

TEST(OrchestratorTest, InstallsOnEveryInstanceOfSource) {
  Simulation sim;
  ServiceConfig b;
  b.name = "b";
  b.instances = 2;
  sim.add_service(b);
  ServiceConfig a;
  a.name = "a";
  a.instances = 3;
  a.dependencies = {"b"};
  sim.add_service(a);

  FailureOrchestrator orch(&sim.deployment());
  ASSERT_TRUE(orch.install({FaultRule::abort_rule("a", "b", 503)}).ok());
  EXPECT_EQ(orch.rules_installed(), 1u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sim.find_service("a")->instance(i).agent()->engine()
                  .rule_count(), 1u) << i;
  }
  // b's agents were not touched.
  EXPECT_EQ(sim.find_service("b")->instance(0).agent()->engine().rule_count(),
            0u);
}

TEST(OrchestratorTest, WildcardSourceInstallsEverywhere) {
  Simulation sim;
  ServiceConfig a;
  a.name = "a";
  sim.add_service(a);
  ServiceConfig b;
  b.name = "b";
  sim.add_service(b);
  FailureOrchestrator orch(&sim.deployment());
  ASSERT_TRUE(orch.install({FaultRule::abort_rule("*", "b", 503)}).ok());
  EXPECT_EQ(sim.find_service("a")->instance(0).agent()->engine().rule_count(),
            1u);
  EXPECT_EQ(sim.find_service("b")->instance(0).agent()->engine().rule_count(),
            1u);
}

TEST(OrchestratorTest, UnknownSourceFails) {
  Simulation sim;
  ServiceConfig a;
  a.name = "a";
  sim.add_service(a);
  FailureOrchestrator orch(&sim.deployment());
  EXPECT_FALSE(orch.install({FaultRule::abort_rule("ghost", "a", 503)}).ok());
}

TEST(OrchestratorTest, ClearRemovesRulesEverywhere) {
  Simulation sim;
  ServiceConfig a;
  a.name = "a";
  a.instances = 2;
  sim.add_service(a);
  FailureOrchestrator orch(&sim.deployment());
  ASSERT_TRUE(orch.install({FaultRule::abort_rule("a", "x", 503)}).ok());
  ASSERT_TRUE(orch.clear_rules().ok());
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(
        sim.find_service("a")->instance(i).agent()->engine().rule_count(),
        0u);
  }
}

TEST(OrchestratorTest, CollectDrainsAgentsIntoStore) {
  Simulation sim;
  ServiceConfig b;
  b.name = "b";
  sim.add_service(b);
  ServiceConfig a;
  a.name = "a";
  a.dependencies = {"b"};
  sim.add_service(a);
  sim.inject("user", "a", sim::SimRequest{.request_id = "test-1"},
             [](const sim::SimResponse&) {});
  sim.run();

  FailureOrchestrator orch(&sim.deployment());
  ASSERT_TRUE(orch.collect_logs(&sim.log_store()).ok());
  // user→a and a→b, requests + responses.
  EXPECT_EQ(sim.log_store().size(), 4u);
  // Agents were drained: a second collect adds nothing.
  ASSERT_TRUE(orch.collect_logs(&sim.log_store()).ok());
  EXPECT_EQ(sim.log_store().size(), 4u);
}

// --------------------------------------------------- end-to-end assertions

// Builds serviceA → serviceB where serviceA's policy is configurable —
// the running example of Section 3.2.
struct ExampleApp {
  Simulation sim;
  topology::AppGraph graph;

  explicit ExampleApp(const resilience::CallPolicy& a_policy,
                      uint64_t seed = 42)
      : sim(SimulationConfig{seed, usec(500)}) {
    ServiceConfig b;
    b.name = "serviceB";
    b.processing_time = msec(2);
    sim.add_service(b);
    ServiceConfig a;
    a.name = "serviceA";
    a.processing_time = msec(1);
    a.dependencies = {"serviceB"};
    a.default_policy = a_policy;
    sim.add_service(a);
    graph.add_edge("user", "serviceA");
    graph.add_edge("serviceA", "serviceB");
  }
};

TEST(EndToEndCheckTest, BoundedRetriesPassesForCompliantService) {
  resilience::CallPolicy policy;
  policy.timeout = msec(100);
  policy.retry.max_retries = 3;  // within the allowed 5
  policy.retry.base_backoff = msec(5);
  ExampleApp app(policy);
  TestSession session(&app.sim, app.graph);

  ASSERT_TRUE(session.apply(FailureSpec::overload("serviceB")).ok());
  session.run_load("user", "serviceA", 50);
  ASSERT_TRUE(session.collect().ok());

  const auto result =
      session.checker().has_bounded_retries("serviceA", "serviceB", 5);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(EndToEndCheckTest, BoundedRetriesFailsForRetryStorm) {
  resilience::CallPolicy policy;
  policy.timeout = msec(100);
  policy.retry.max_retries = 9;  // exceeds the allowed 5
  policy.retry.base_backoff = msec(1);
  policy.retry.multiplier = 1.0;
  ExampleApp app(policy);
  TestSession session(&app.sim, app.graph);

  ASSERT_TRUE(session.apply(FailureSpec::crash("serviceB")).ok());
  session.run_load("user", "serviceA", 20);
  ASSERT_TRUE(session.collect().ok());

  const auto result =
      session.checker().has_bounded_retries("serviceA", "serviceB", 5);
  EXPECT_FALSE(result.passed) << result.detail;
}

TEST(EndToEndCheckTest, CircuitBreakerDetectedWhenPresent) {
  resilience::CallPolicy policy;
  policy.timeout = msec(100);
  policy.circuit_breaker = resilience::CircuitBreakerConfig{5, sec(10), 1};
  policy.fallback = resilience::Fallback{200, "cached"};
  ExampleApp app(policy);
  TestSession session(&app.sim, app.graph);

  ASSERT_TRUE(session.apply(FailureSpec::crash("serviceB")).ok());
  session.run_load("user", "serviceA", 50);
  ASSERT_TRUE(session.collect().ok());

  const auto result = session.checker().has_circuit_breaker(
      "serviceA", "serviceB", 5, sec(1), 1);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(EndToEndCheckTest, CircuitBreakerAbsenceDetected) {
  resilience::CallPolicy policy;  // naive
  ExampleApp app(policy);
  TestSession session(&app.sim, app.graph);

  ASSERT_TRUE(session.apply(FailureSpec::crash("serviceB")).ok());
  session.run_load("user", "serviceA", 50);
  ASSERT_TRUE(session.collect().ok());

  const auto result = session.checker().has_circuit_breaker(
      "serviceA", "serviceB", 5, sec(1), 1);
  EXPECT_FALSE(result.passed) << result.detail;
}

TEST(EndToEndCheckTest, TimeoutsDetected) {
  // serviceB hangs; a service with timeouts bounds its own replies.
  resilience::CallPolicy with_timeout;
  with_timeout.timeout = msec(200);
  with_timeout.fallback = resilience::Fallback{200, "cached"};
  ExampleApp app(with_timeout);
  TestSession session(&app.sim, app.graph);
  ASSERT_TRUE(session.apply(FailureSpec::hang("serviceB", sec(30))).ok());
  session.run_load("user", "serviceA", 20);
  ASSERT_TRUE(session.collect().ok());
  const auto result = session.checker().has_timeouts("serviceA", sec(1));
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(EndToEndCheckTest, TimeoutAbsenceDetected) {
  ExampleApp app(resilience::CallPolicy{});  // naive: waits forever
  TestSession session(&app.sim, app.graph);
  ASSERT_TRUE(session.apply(FailureSpec::hang("serviceB", sec(30))).ok());
  session.run_load("user", "serviceA", 20);
  ASSERT_TRUE(session.collect().ok());
  const auto result = session.checker().has_timeouts("serviceA", sec(1));
  EXPECT_FALSE(result.passed) << result.detail;
}

TEST(EndToEndCheckTest, ChainedFailureScenario) {
  // The multi-step recipe of Section 4.2: Overload, check bounded retries,
  // then Crash and check the circuit breaker — all in one session.
  resilience::CallPolicy policy;
  // Timeout above the Overload delay so phase 1 only trips on the 25% of
  // aborted calls — the breaker must still be closed when phase 2 starts.
  policy.timeout = msec(300);
  policy.retry.max_retries = 3;
  policy.retry.base_backoff = msec(5);
  policy.circuit_breaker = resilience::CircuitBreakerConfig{5, sec(10), 1};
  policy.fallback = resilience::Fallback{200, "cached"};
  ExampleApp app(policy);
  TestSession session(&app.sim, app.graph);

  ASSERT_TRUE(session.apply(FailureSpec::overload("serviceB")).ok());
  session.run_load("user", "serviceA", 30);
  ASSERT_TRUE(session.collect().ok());
  ASSERT_TRUE(session.check(
      session.checker().has_bounded_retries("serviceA", "serviceB", 5)));

  ASSERT_TRUE(session.clear_faults().ok());
  sim::Simulation& s = session.sim();
  s.log_store().clear();

  ASSERT_TRUE(session.apply(FailureSpec::crash("serviceB")).ok());
  control::LoadOptions load;
  load.count = 50;
  load.id_prefix = "test-crash-";
  session.run_load("user", "serviceA", load);
  ASSERT_TRUE(session.collect().ok());
  EXPECT_TRUE(session.check(session.checker().has_circuit_breaker(
      "serviceA", "serviceB", 5, sec(1), 1)));
  EXPECT_TRUE(session.all_passed()) << session.report();
}

TEST(EndToEndCheckTest, ReportListsOutcomes) {
  ExampleApp app(resilience::CallPolicy{});
  TestSession session(&app.sim, app.graph);
  ASSERT_TRUE(session.apply(FailureSpec::crash("serviceB")).ok());
  session.run_load("user", "serviceA", 10);
  ASSERT_TRUE(session.collect().ok());
  session.check(session.checker().has_timeouts("serviceA", sec(1)));
  session.check(
      session.checker().has_bounded_retries("serviceA", "serviceB", 5));
  const std::string report = session.report();
  EXPECT_NE(report.find("HasTimeouts"), std::string::npos);
  EXPECT_NE(report.find("HasBoundedRetries"), std::string::npos);
}

}  // namespace
}  // namespace gremlin::control
