// Regression tests for the P² streaming quantile estimator: exactness on
// tiny streams, pinned error bounds against the exact sorted percentile on
// large seeded samples, and StreamingSummary parity with summarize().
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "workload/stats.h"

namespace gremlin::workload {
namespace {

double relative_error(double estimate, double exact) {
  return std::abs(estimate - exact) / std::abs(exact);
}

double exact_pct(const std::vector<Duration>& samples, double pct) {
  return static_cast<double>(percentile(samples, pct).count());
}

std::vector<Duration> uniform_samples(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Duration> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Duration(static_cast<int64_t>(rng.next_below(1000000))));
  }
  return out;
}

std::vector<Duration> exponential_samples(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Duration> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Duration(static_cast<int64_t>(rng.exponential(50000.0))));
  }
  return out;
}

TEST(StreamingQuantileTest, TinyStreamsAreExact) {
  StreamingQuantile p50(50);
  EXPECT_EQ(p50.estimate(), 0.0);
  p50.add(30.0);
  EXPECT_EQ(p50.estimate(), 30.0);
  p50.add(10.0);
  p50.add(20.0);
  // Nearest-rank median of {10, 20, 30}.
  EXPECT_EQ(p50.estimate(), 20.0);

  StreamingQuantile p99(99);
  for (const double v : {5.0, 1.0, 4.0, 2.0}) p99.add(v);
  EXPECT_EQ(p99.estimate(), 5.0);
}

TEST(StreamingQuantileTest, UniformErrorBounds) {
  const auto samples = uniform_samples(100000, 1234);
  StreamingQuantile p50(50), p90(90), p99(99);
  for (const Duration d : samples) {
    p50.add(d);
    p90.add(d);
    p99.add(d);
  }
  EXPECT_LT(relative_error(p50.estimate(), exact_pct(samples, 50)), 0.02);
  EXPECT_LT(relative_error(p90.estimate(), exact_pct(samples, 90)), 0.02);
  EXPECT_LT(relative_error(p99.estimate(), exact_pct(samples, 99)), 0.02);
}

TEST(StreamingQuantileTest, ExponentialTailErrorBounds) {
  // Heavy-tailed input is the hard case for five markers: pin looser but
  // still useful bounds on the tail estimates.
  const auto samples = exponential_samples(100000, 99);
  StreamingQuantile p50(50), p90(90), p99(99);
  for (const Duration d : samples) {
    p50.add(d);
    p90.add(d);
    p99.add(d);
  }
  EXPECT_LT(relative_error(p50.estimate(), exact_pct(samples, 50)), 0.05);
  EXPECT_LT(relative_error(p90.estimate(), exact_pct(samples, 90)), 0.05);
  EXPECT_LT(relative_error(p99.estimate(), exact_pct(samples, 99)), 0.10);
}

TEST(StreamingSummaryTest, MatchesBatchSummarizeOnExactFields) {
  const auto samples = uniform_samples(50000, 7);
  StreamingSummary streaming;
  for (const Duration d : samples) streaming.add(d);
  const Summary exact = summarize(samples);
  const Summary approx = streaming.summary();
  EXPECT_EQ(approx.count, exact.count);
  EXPECT_EQ(approx.min, exact.min);
  EXPECT_EQ(approx.max, exact.max);
  EXPECT_EQ(approx.mean, exact.mean);
  EXPECT_LT(relative_error(static_cast<double>(approx.p50.count()),
                           static_cast<double>(exact.p50.count())),
            0.02);
  EXPECT_LT(relative_error(static_cast<double>(approx.p90.count()),
                           static_cast<double>(exact.p90.count())),
            0.02);
  EXPECT_LT(relative_error(static_cast<double>(approx.p99.count()),
                           static_cast<double>(exact.p99.count())),
            0.02);
}

TEST(StreamingSummaryTest, EmptyStreamYieldsZeroSummary) {
  const Summary s = StreamingSummary().summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, kDurationZero);
}

}  // namespace
}  // namespace gremlin::workload
