// Differential tests for the hierarchical timer wheel (sim/event_queue.h):
// the wheel is an optimization, never a semantic, so a queue with the wheel
// enabled must pop the exact (time, seq) order of a heap-only queue over
// any schedule — including schedules that straddle the wheel's level-0
// window, the level-1 span, the overflow-to-heap region, behind-the-cursor
// inserts, and negative timestamps. The fuzz below replays 1000 seeded
// random schedule programs through both configurations and requires
// byte-identical pop sequences; directed tests pin the cascade-FIFO
// invariant and the clear()/warm-reset hygiene contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"

namespace gremlin::sim {
namespace {

constexpr int64_t kWindowTicks = 4096;       // level-0 span (one window)
constexpr int64_t kSpanTicks = 62 * 4096;    // level-1 horizon

// One scheduling program: a deterministic op list generated from a seed,
// replayable against any queue configuration.
struct Op {
  enum Kind { kScheduleAt, kScheduleTimer, kPop };
  Kind kind = kPop;
  int64_t arg = 0;  // offset ticks from "now" (kScheduleAt) or delay index
};

constexpr int64_t kTimerDelays[] = {500, 1000, 5000, 100000};

std::vector<Op> make_program(uint64_t seed, size_t length) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(length);
  int64_t last_offset = 0;
  for (size_t i = 0; i < length; ++i) {
    if (rng.next_below(10) < 4) {
      ops.push_back({Op::kPop, 0});
      continue;
    }
    if (rng.next_below(10) < 2) {
      ops.push_back({Op::kScheduleTimer,
                     static_cast<int64_t>(rng.next_below(4))});
      continue;
    }
    int64_t offset = 0;
    switch (rng.next_below(6)) {
      case 0:  // dense near future: current level-0 window
        offset = static_cast<int64_t>(rng.next_below(kWindowTicks));
        break;
      case 1:  // level-1 range
        offset = kWindowTicks +
                 static_cast<int64_t>(rng.next_below(kSpanTicks - kWindowTicks));
        break;
      case 2:  // beyond the wheel horizon: heap overflow
        offset = kSpanTicks +
                 static_cast<int64_t>(rng.next_below(1'000'000));
        break;
      case 3:  // exact tie with the previous schedule (seq tie-break)
        offset = last_offset;
        break;
      case 4:  // at "now" or just behind it (behind-cursor fallback)
        offset = -static_cast<int64_t>(rng.next_below(2000));
        break;
      case 5:  // far in the past, possibly a negative absolute time
        offset = -static_cast<int64_t>(rng.next_below(5'000'000));
        break;
    }
    last_offset = offset;
    ops.push_back({Op::kScheduleAt, offset});
  }
  return ops;
}

struct Popped {
  TimePoint at{};
  int label = 0;
  bool operator==(const Popped&) const = default;
};

// Replays `ops` on a fresh-or-reused queue and returns the pop sequence.
// "now" tracks the last popped timestamp, as a simulation clock would.
std::vector<Popped> replay(EventQueue& queue, const std::vector<Op>& ops) {
  std::vector<Popped> popped;
  TimePoint now{};
  int label = 0;
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kScheduleAt: {
        const TimePoint at = now + Duration(op.arg);
        const int l = label++;
        queue.schedule_at(at, [&popped, at, l] { popped.push_back({at, l}); });
        break;
      }
      case Op::kScheduleTimer: {
        const Duration delay{kTimerDelays[op.arg]};
        const TimePoint at = now + delay;
        const int l = label++;
        queue.schedule_timer(at, delay,
                             [&popped, at, l] { popped.push_back({at, l}); });
        break;
      }
      case Op::kPop:
        if (!queue.empty()) now = queue.pop_and_run();
        break;
    }
  }
  while (!queue.empty()) now = queue.pop_and_run();
  return popped;
}

std::vector<Popped> replay_fresh(const std::vector<Op>& ops, bool wheel) {
  EventQueue queue;
  queue.set_wheel_enabled(wheel);
  return replay(queue, ops);
}

TEST(EventWheelDifferentialTest, WheelMatchesHeapOver1000SeededSchedules) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    const std::vector<Op> ops = make_program(seed, 200);
    const std::vector<Popped> with_wheel = replay_fresh(ops, true);
    const std::vector<Popped> heap_only = replay_fresh(ops, false);
    ASSERT_EQ(with_wheel, heap_only) << "pop order diverged at seed " << seed;
    // Every scheduled event must surface exactly once.
    size_t scheduled = 0;
    for (const Op& op : ops) scheduled += op.kind != Op::kPop;
    ASSERT_EQ(with_wheel.size(), scheduled) << "lost events at seed " << seed;
  }
}

TEST(EventWheelTest, NearFutureEventsLandInTheWheel) {
  EventQueue queue;
  for (int i = 0; i < 32; ++i) {
    queue.schedule_at(TimePoint{Duration(i * 100)}, [] {});
  }
  EXPECT_EQ(queue.wheel_size(), 32u);
  EXPECT_EQ(queue.size(), 32u);

  EventQueue heap_only;
  heap_only.set_wheel_enabled(false);
  for (int i = 0; i < 32; ++i) {
    heap_only.schedule_at(TimePoint{Duration(i * 100)}, [] {});
  }
  EXPECT_EQ(heap_only.wheel_size(), 0u);
}

TEST(EventWheelTest, HorizonRoutesLevel1AndOverflow) {
  EventQueue queue;
  // Last tick inside the level-1 span is wheel-resident; one window later
  // overflows to the heap.
  queue.schedule_at(TimePoint{Duration(kSpanTicks + kWindowTicks - 1)}, [] {});
  EXPECT_EQ(queue.wheel_size(), 1u);
  queue.schedule_at(TimePoint{Duration(kSpanTicks + kWindowTicks)}, [] {});
  EXPECT_EQ(queue.wheel_size(), 1u);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop_and_run(), TimePoint{Duration(kSpanTicks + kWindowTicks - 1)});
  EXPECT_EQ(queue.pop_and_run(), TimePoint{Duration(kSpanTicks + kWindowTicks)});
}

TEST(EventWheelTest, CascadePreservesFifoAgainstDirectInserts) {
  EventQueue queue;
  std::vector<int> order;
  const TimePoint wake{Duration(5 * kWindowTicks)};       // future window
  const TimePoint target{Duration(5 * kWindowTicks + 7)};  // same window
  // Seeded through level 1 before the window is current...
  for (int i = 0; i < 8; ++i) {
    queue.schedule_at(target, [&order, i] { order.push_back(i); });
  }
  // ...then a wake event advances the wheel into the window (cascading the
  // level-1 slot), and direct level-0 inserts at the same tick follow.
  queue.schedule_at(wake, [&queue, &order] {
    const TimePoint target{Duration(5 * kWindowTicks + 7)};
    for (int i = 8; i < 16; ++i) {
      queue.schedule_at(target, [&order, i] { order.push_back(i); });
    }
  });
  while (!queue.empty()) queue.pop_and_run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);  // pure seq order
}

TEST(EventWheelTest, BehindCursorInsertStillPopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(TimePoint{Duration(3000)}, [&] { order.push_back(0); });
  queue.pop_and_run();  // cursor now at tick 3000
  queue.schedule_at(TimePoint{Duration(1000)}, [&] { order.push_back(1); });
  queue.schedule_at(TimePoint{Duration(3500)}, [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventWheelTest, ClearReleasesEveryWheelNodeToThePoolFreeList) {
  EventQueue queue;
  // Populate level 0, level 1, and the heap, drain part of it, then clear
  // mid-flight: every pool node must land back on the free list.
  for (int i = 0; i < 300; ++i) {
    queue.schedule_at(TimePoint{Duration(i * 10)}, [] {});                // L0
    queue.schedule_at(TimePoint{Duration(kWindowTicks * 3 + i)}, [] {});  // L1
    queue.schedule_at(TimePoint{Duration(kSpanTicks * 2 + i)}, [] {});  // heap
  }
  for (int i = 0; i < 200; ++i) queue.pop_and_run();
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.wheel_size(), 0u);
  EXPECT_EQ(queue.free_list_length(), queue.pool_capacity());
}

TEST(EventWheelTest, WarmReplayAfterClearMatchesFreshQueue) {
  const std::vector<Op> ops = make_program(0x5eed, 400);
  EventQueue reused;
  // Dirty the queue (wheel advanced deep into a run, slots part-drained),
  // then clear: the wheel must rewind to window zero with storage retained
  // so the replay is byte-identical to a fresh queue's.
  replay(reused, ops);
  for (int i = 0; i < 50; ++i) {
    reused.schedule_at(TimePoint{Duration(i * 997)}, [] {});
  }
  reused.clear();
  EXPECT_EQ(replay(reused, ops), replay_fresh(ops, true));
}

}  // namespace
}  // namespace gremlin::sim
