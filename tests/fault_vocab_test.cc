// Fault-vocabulary tests: the determinism harness for probabilistic,
// distribution-valued, time-bounded, and infra-level faults.
//
// The headline matrix: a campaign exercising every new fault class must be
// byte-identical (fingerprint() AND verdict_fingerprint()) at {1,4,8}
// threads × {1,2} processes × warm/cold — randomness widens what faults can
// express, never what runs can diverge. The unit tests below pin the
// mechanisms that make that possible: counter-based streams that are pure
// functions of (key, position), samplers that reproduce from the same key,
// activation windows on the virtual clock, and the instance-crash outage
// hook. The warmcache suite proves the paper-level payoff — a seeded bug
// only the richer vocabulary can reach.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "campaign/app_spec.h"
#include "campaign/experiment.h"
#include "campaign/process_pool.h"
#include "campaign/runner.h"
#include "common/rng.h"
#include "control/failures.h"
#include "faults/rule.h"
#include "faults/rule_engine.h"
#include "search/search.h"

namespace gremlin {
namespace {

using campaign::AppSpec;
using campaign::CampaignResult;
using campaign::CampaignRunner;
using campaign::CheckSpec;
using campaign::Experiment;
using campaign::RunnerOptions;
using control::FailureSpec;
using faults::DelayDistribution;
using faults::FaultKind;
using faults::FaultRule;
using faults::MessageView;
using faults::RuleEngine;

// --- counter streams ---------------------------------------------------------

TEST(CounterRngTest, DrawIsAPureFunctionOfKeyAndPosition) {
  // Same (key, position) → same value, in any draw order.
  const uint64_t key = 0x9e3779b97f4a7c15ULL;
  std::vector<uint64_t> forward, backward;
  for (uint64_t i = 0; i < 100; ++i) forward.push_back(counter_u64(key, i));
  for (uint64_t i = 100; i-- > 0;) backward.push_back(counter_u64(key, i));
  std::reverse(backward.begin(), backward.end());
  EXPECT_EQ(forward, backward);

  // Different keys decorrelate the streams.
  EXPECT_NE(counter_u64(key, 0), counter_u64(key + 1, 0));
}

TEST(CounterRngTest, DoubleStaysInUnitInterval) {
  for (uint64_t i = 0; i < 1000; ++i) {
    const double u = counter_double(0xfeedface, i);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// --- delay samplers ----------------------------------------------------------

TEST(DelaySamplerTest, UniformStaysInBoundsAndReproduces) {
  FaultRule r = FaultRule::delay_rule("a", "b", msec(100));
  r.delay_distribution = DelayDistribution::kUniform;
  r.delay_min = msec(10);
  r.delay_max = msec(40);
  const uint64_t key = 0xabcd;
  bool saw_low_half = false, saw_high_half = false;
  for (uint64_t i = 0; i < 1000; ++i) {
    const Duration d = sample_delay(r, key, i);
    ASSERT_GE(d, msec(10));
    ASSERT_LE(d, msec(40));
    EXPECT_EQ(d, sample_delay(r, key, i));  // same position, same value
    if (d < msec(25)) saw_low_half = true;
    if (d >= msec(25)) saw_high_half = true;
  }
  EXPECT_TRUE(saw_low_half);
  EXPECT_TRUE(saw_high_half);
}

TEST(DelaySamplerTest, ExponentialIsPositiveAndCentersOnTheMean) {
  FaultRule r = FaultRule::delay_rule("a", "b", msec(100));
  r.delay_distribution = DelayDistribution::kExponential;
  r.delay_mean = msec(20);
  const uint64_t key = 0x1234;
  double sum_us = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    const Duration d = sample_delay(r, key, i);
    ASSERT_GT(d, kDurationZero);
    EXPECT_EQ(d, sample_delay(r, key, i));
    sum_us += static_cast<double>(d.count());
  }
  // Sample mean within 15% of the configured mean (20ms) at n=1000.
  EXPECT_NEAR(sum_us / 1000.0, 20000.0, 3000.0);
}

TEST(DelaySamplerTest, EmpiricalPicksOnlyListedValues) {
  FaultRule r = FaultRule::delay_rule("a", "b", msec(100));
  r.delay_distribution = DelayDistribution::kEmpirical;
  r.delay_values = {msec(5), msec(15), msec(25)};
  const std::set<Duration> allowed(r.delay_values.begin(),
                                   r.delay_values.end());
  std::set<Duration> seen;
  for (uint64_t i = 0; i < 1000; ++i) {
    const Duration d = sample_delay(r, 0x77, i);
    ASSERT_TRUE(allowed.count(d) != 0) << d.count();
    seen.insert(d);
  }
  EXPECT_EQ(seen, allowed);  // 1000 draws cover all three values
}

TEST(DelaySamplerTest, FixedIgnoresTheStream) {
  const FaultRule r = FaultRule::delay_rule("a", "b", msec(100));
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(sample_delay(r, i * 31, i), msec(100));
  }
}

// --- probabilistic rules -----------------------------------------------------

MessageView request_view(std::string_view src, std::string_view dst,
                         std::string_view id, Duration now = {}) {
  MessageView m;
  m.src = src;
  m.dst = dst;
  m.request_id = id;
  m.now = now;
  return m;
}

TEST(ProbabilisticRuleTest, DegenerateProbabilitiesAreExact) {
  RuleEngine engine(/*seed=*/7);
  ASSERT_TRUE(
      engine.add_rule(FaultRule::abort_rule("a", "b", 503, "*", 0.0)).ok());
  ASSERT_TRUE(
      engine.add_rule(FaultRule::abort_rule("a", "c", 503, "*", 1.0)).ok());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(engine.evaluate(request_view("a", "b", "x")).none());
    EXPECT_EQ(engine.evaluate(request_view("a", "c", "x")).action,
              FaultKind::kAbort);
  }
}

TEST(ProbabilisticRuleTest, DeclineFallsThroughToLaterRules) {
  // First-match-wins with probabilistic fall-through: a declined p=0.5
  // abort lets the always-on delay behind it fire, so every message gets
  // exactly one action and the split converges to the conditional
  // probability.
  RuleEngine engine(/*seed=*/42);
  ASSERT_TRUE(
      engine.add_rule(FaultRule::abort_rule("a", "b", 503, "*", 0.5)).ok());
  ASSERT_TRUE(
      engine.add_rule(FaultRule::delay_rule("a", "b", msec(10), "*", 1.0))
          .ok());
  int aborts = 0, delays = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    switch (engine.evaluate(request_view("a", "b", "x")).action) {
      case FaultKind::kAbort: ++aborts; break;
      case FaultKind::kDelay: ++delays; break;
      default: FAIL() << "message escaped both rules";
    }
  }
  EXPECT_NEAR(static_cast<double>(aborts) / n, 0.5, 0.03);
  EXPECT_EQ(aborts + delays, n);
}

TEST(ProbabilisticRuleTest, StreamsAreIndependentOfSiblingRules) {
  // The draw for rule R at attempt N must not shift when an unrelated rule
  // is installed after it — counter streams are keyed per installation
  // position, not shared.
  auto fires = [](bool with_sibling) {
    RuleEngine engine(/*seed=*/11);
    (void)engine.add_rule(FaultRule::abort_rule("a", "b", 503, "*", 0.5));
    if (with_sibling) {
      (void)engine.add_rule(FaultRule::abort_rule("x", "y", 500, "*", 0.5));
    }
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) {
      out.push_back(!engine.evaluate(request_view("a", "b", "r")).none());
      if (with_sibling) {
        (void)engine.evaluate(request_view("x", "y", "r"));
      }
    }
    return out;
  };
  EXPECT_EQ(fires(false), fires(true));
}

// --- activation windows ------------------------------------------------------

TEST(ActivationWindowTest, RuleIsInvisibleOutsideItsWindow) {
  RuleEngine engine;
  FaultRule r = FaultRule::abort_rule("a", "b", 503);
  r.after = msec(10);
  r.window_duration = msec(20);
  ASSERT_TRUE(engine.add_rule(r).ok());

  EXPECT_TRUE(engine.evaluate(request_view("a", "b", "x", msec(5))).none());
  EXPECT_EQ(engine.evaluate(request_view("a", "b", "x", msec(10))).action,
            FaultKind::kAbort);
  EXPECT_EQ(engine.evaluate(request_view("a", "b", "x", msec(29))).action,
            FaultKind::kAbort);
  EXPECT_TRUE(engine.evaluate(request_view("a", "b", "x", msec(30))).none());
  EXPECT_TRUE(engine.evaluate(request_view("a", "b", "x", msec(60))).none());
}

TEST(ActivationWindowTest, ZeroDurationWindowIsOpenEnded) {
  RuleEngine engine;
  FaultRule r = FaultRule::abort_rule("a", "b", 503);
  r.after = msec(10);
  ASSERT_TRUE(engine.add_rule(r).ok());
  EXPECT_TRUE(engine.evaluate(request_view("a", "b", "x", msec(9))).none());
  EXPECT_EQ(engine.evaluate(request_view("a", "b", "x", hours(1))).action,
            FaultKind::kAbort);
}

// --- infra-level lowering ----------------------------------------------------

topology::AppGraph chain_graph() {
  topology::AppGraph g;
  g.add_edge("user", "portal");
  g.add_edge("portal", "backend");
  g.add_edge("portal", "search");
  return g;
}

TEST(InfraFaultTest, InstanceCrashLowersToWindowedResets) {
  const auto rules = control::translate_failure(
      chain_graph(),
      FailureSpec::instance_crash("backend", msec(20), msec(50)));
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules.value().size(), 1u);  // backend has one dependent
  const FaultRule& r = rules.value()[0];
  EXPECT_EQ(r.type, FaultKind::kAbort);
  EXPECT_EQ(r.abort_code, faults::kTcpReset);
  EXPECT_EQ(r.after, msec(20));
  EXPECT_EQ(r.window_duration, msec(50));
}

TEST(InfraFaultTest, RollingPartitionStaggersMemberWindows) {
  const auto rules = control::translate_failure(
      chain_graph(),
      FailureSpec::rolling_partition({"search", "backend"}, msec(10),
                                     msec(30), msec(40)));
  ASSERT_TRUE(rules.ok());
  ASSERT_FALSE(rules.value().empty());
  // Members are isolated in sorted order: backend first, then search,
  // offset by the stagger. Every rule is a windowed reset.
  std::set<Duration> onsets;
  for (const FaultRule& r : rules.value()) {
    EXPECT_EQ(r.type, FaultKind::kAbort);
    EXPECT_EQ(r.abort_code, faults::kTcpReset);
    EXPECT_EQ(r.window_duration, msec(30));
    onsets.insert(r.after);
  }
  EXPECT_EQ(onsets, (std::set<Duration>{msec(10), msec(50)}));
}

TEST(InfraFaultTest, SlowNodeLowersToDistributionDelays) {
  const auto rules = control::translate_failure(
      chain_graph(), FailureSpec::slow_node("backend", msec(25)));
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules.value().size(), 1u);
  const FaultRule& r = rules.value()[0];
  EXPECT_EQ(r.type, FaultKind::kDelay);
  EXPECT_EQ(r.delay_distribution, DelayDistribution::kExponential);
  EXPECT_EQ(r.delay_mean, msec(25));
}

control::LoadOptions small_load(size_t count = 30, Duration gap = msec(5)) {
  control::LoadOptions load;
  load.count = count;
  load.gap = gap;
  return load;
}

TEST(InfraFaultTest, InstanceCrashOutageRefusesThenRestarts) {
  // End to end through the campaign engine: the outage window [50ms, 100ms)
  // fails exactly the requests that land inside it; the service restarts
  // when the window closes, so later requests succeed again.
  Experiment e;
  e.id = "instance_crash(svc1)";
  e.app = AppSpec::quickstart(/*retries=*/0, /*timeout=*/msec(300));
  e.failures.push_back(
      FailureSpec::instance_crash("serviceB", msec(50), msec(50)));
  e.load = small_load(40, msec(5));  // spans 200ms
  e.checks.push_back(CheckSpec::max_user_failures(0));

  campaign::ExecOptions exec;
  exec.early_exit = false;
  const auto result = CampaignRunner::run_one(e, exec);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.failures, 0u);            // the window bites...
  EXPECT_LT(result.failures, e.load.count);  // ...but not outside itself

  // A window that opens after the load finishes never bites.
  Experiment late = e;
  late.failures.clear();
  late.failures.push_back(
      FailureSpec::instance_crash("serviceB", hours(1), msec(50)));
  const auto clean = CampaignRunner::run_one(late, exec);
  ASSERT_TRUE(clean.ok) << clean.error;
  EXPECT_EQ(clean.failures, 0u);
}

// --- the determinism matrix --------------------------------------------------

// One experiment per new fault class (plus a distribution-valued pair), all
// against the binary-tree app: the corpus the byte-identity matrix runs.
std::vector<Experiment> vocabulary_corpus() {
  const AppSpec app = AppSpec::tree();
  std::vector<Experiment> out;
  auto add = [&](std::string id, FailureSpec spec) {
    Experiment e;
    e.id = std::move(id);
    e.app = app;
    e.failures.push_back(std::move(spec));
    e.load = small_load();
    e.checks.push_back(CheckSpec::max_user_failures(0));
    e.seed = 42;
    out.push_back(std::move(e));
  };

  FailureSpec probabilistic = FailureSpec::abort_edge("svc0", "svc1");
  probabilistic.probability = 0.5;
  add("abort(svc0->svc1) p=0.5", probabilistic);

  FailureSpec uniform = FailureSpec::delay_edge("svc0", "svc2", msec(100));
  uniform.delay_distribution = DelayDistribution::kUniform;
  uniform.delay_min = msec(10);
  uniform.delay_max = msec(60);
  add("delay(svc0->svc2) uniform", uniform);

  FailureSpec empirical = FailureSpec::delay_edge("svc1", "svc3", msec(100));
  empirical.delay_distribution = DelayDistribution::kEmpirical;
  empirical.delay_values = {msec(5), msec(20), msec(80)};
  add("delay(svc1->svc3) empirical", empirical);

  FailureSpec windowed = FailureSpec::abort_edge("svc0", "svc1");
  windowed.after = msec(40);
  windowed.window = msec(60);
  add("abort(svc0->svc1) w=40ms+60ms", windowed);

  add("instance_crash(svc2)",
      FailureSpec::instance_crash("svc2", msec(30), msec(50)));
  add("rolling_partition({svc1,svc2})",
      FailureSpec::rolling_partition({"svc1", "svc2"}, msec(10), msec(30),
                                     msec(40)));
  add("slow_node(svc1)", FailureSpec::slow_node("svc1", msec(20)));
  return out;
}

RunnerOptions matrix_opts(int procs, int threads, bool warm) {
  RunnerOptions o;
  o.procs = procs;
  o.threads = threads;
  o.warm_worlds = warm;
  o.keep_latencies = true;  // byte-identity must cover raw latencies too
  o.early_exit = false;     // full runs: fingerprints cover every request
  return o;
}

TEST(FaultVocabMatrixTest, ByteIdenticalAcrossThreadsProcsWarmCold) {
  const auto experiments = vocabulary_corpus();
  const CampaignResult reference =
      CampaignRunner(matrix_opts(1, 1, /*warm=*/false)).run(experiments);
  ASSERT_EQ(reference.experiments.size(), experiments.size());

  for (const bool warm : {false, true}) {
    for (const int threads : {1, 4, 8}) {
      for (const int procs : {1, 2}) {
        if (procs > 1 && !campaign::multiproc_available()) continue;
        const CampaignResult run =
            CampaignRunner(matrix_opts(procs, threads, warm))
                .run(experiments);
        ASSERT_EQ(run.experiments.size(), experiments.size());
        EXPECT_EQ(run.fingerprint(), reference.fingerprint())
            << "procs=" << procs << " threads=" << threads
            << " warm=" << warm;
        EXPECT_EQ(run.verdict_fingerprint(), reference.verdict_fingerprint())
            << "procs=" << procs << " threads=" << threads
            << " warm=" << warm;
      }
    }
  }
}

// --- the payoff: a bug only the new vocabulary reaches -----------------------

search::SearchOptions warmcache_search() {
  search::SearchOptions options;
  options.seed = 42;
  options.threads = 1;
  options.load.count = 40;
  options.load.gap = msec(2);
  options.generator.kinds = {
      FailureSpec::Kind::kAbort, FailureSpec::Kind::kDelay,
      FailureSpec::Kind::kCrash, FailureSpec::Kind::kDisconnect};
  return options;
}

TEST(WarmCacheSearchTest, DeterministicFaultsNeverReachTheBug) {
  // Every always-on fault makes the backend fail from request zero, so the
  // cold-start fallback absorbs all of them: the deterministic vocabulary
  // proves nothing is wrong.
  const auto outcome =
      search::run_search(AppSpec::warmcache(), warmcache_search());
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.baseline_passed);
  EXPECT_GT(outcome.ran, 0u);
  EXPECT_FALSE(outcome.found_failures());
}

TEST(WarmCacheSearchTest, ProbabilisticFaultReachesTheBug) {
  search::SearchOptions options = warmcache_search();
  options.generator.probability = 0.5;
  const auto outcome = search::run_search(AppSpec::warmcache(), options);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  ASSERT_TRUE(outcome.found_failures());
  // The reproducer names the probabilistic variant explicitly.
  EXPECT_NE(outcome.findings[0].minimal.find("p=0.5"), std::string::npos)
      << outcome.findings[0].minimal;
}

TEST(WarmCacheSearchTest, WindowedFaultReachesTheBug) {
  search::SearchOptions options = warmcache_search();
  options.generator.after = msec(20);  // open-ended window, delayed onset
  const auto outcome = search::run_search(AppSpec::warmcache(), options);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  ASSERT_TRUE(outcome.found_failures());
  EXPECT_NE(outcome.findings[0].minimal.find("w=20ms"), std::string::npos)
      << outcome.findings[0].minimal;
}

TEST(WarmCacheSearchTest, FindingsReplayDeterministically) {
  search::SearchOptions options = warmcache_search();
  options.generator.probability = 0.5;
  const auto first = search::run_search(AppSpec::warmcache(), options);
  const auto second = search::run_search(AppSpec::warmcache(), options);
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  ASSERT_EQ(first.findings.size(), second.findings.size());
  for (size_t i = 0; i < first.findings.size(); ++i) {
    EXPECT_EQ(first.findings[i].minimal, second.findings[i].minimal);
    EXPECT_EQ(first.findings[i].seed, second.findings[i].seed);
    EXPECT_EQ(first.findings[i].signature, second.findings[i].signature);
  }
}

}  // namespace
}  // namespace gremlin
