// Tests for shard-local interning (common/intern.h): per-worker
// ShardSymbolTable semantics, the merge-at-result-boundary contract, alias
// stringification, and the concurrent intern/merge stress that tools/
// check.sh runs under TSan. This is the layer that lets parallel campaign
// workers intern without contending on the global symbol mutex while every
// rendered report stays byte-identical to a sequential run.
#include "common/intern.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "logstore/record.h"

namespace gremlin {
namespace {

TEST(ShardInternTest, ScopedBindRoutesSymbolConstruction) {
  ShardSymbolTable shard;
  {
    ScopedShardSymbols bind(&shard);
    EXPECT_EQ(current_shard_symbols(), &shard);
    const Symbol s("shard-route-fresh-name");
    EXPECT_EQ(s.view(), "shard-route-fresh-name");
    // Fresh name: minted from the shard's block, pending until merge.
    EXPECT_GE(shard.pending_count(), 1u);
  }
  EXPECT_EQ(current_shard_symbols(), nullptr);
}

TEST(ShardInternTest, ShardHitsGlobalSnapshotForKnownNames) {
  const Symbol global_first("shard-snapshot-known");
  ShardSymbolTable shard;
  ScopedShardSymbols bind(&shard);
  const Symbol via_shard("shard-snapshot-known");
  // The name was already in the global index, so the shard resolves it to
  // the same id — no alias, nothing pending for it.
  EXPECT_EQ(via_shard.id(), global_first.id());
}

TEST(ShardInternTest, ShardIsConsistentWithinItself) {
  ShardSymbolTable shard;
  ScopedShardSymbols bind(&shard);
  const Symbol a("shard-self-consistent");
  const Symbol b(std::string("shard-self-consistent"));
  EXPECT_EQ(a, b);  // one text -> one id within the worker
  const auto found = find_symbol("shard-self-consistent");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, a);
}

TEST(ShardInternTest, MergeMakesNamesGloballyFindable) {
  ShardSymbolTable shard;
  Symbol minted;
  {
    ScopedShardSymbols bind(&shard);
    minted = Symbol("shard-merge-published");
  }
  // view() works process-wide immediately (slot published at intern time)…
  EXPECT_EQ(SymbolTable::global().view(minted.id()), "shard-merge-published");
  shard.merge();
  EXPECT_EQ(shard.pending_count(), 0u);
  // …and after merge the global index resolves the text too.
  const auto found = SymbolTable::global().find("shard-merge-published");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->view(), "shard-merge-published");
}

TEST(ShardInternTest, AliasesStringifyIdentically) {
  // Two shards mint the same fresh text independently (the parallel-worker
  // race, deterministically forced). Ids may differ; every rendering of
  // either symbol must not.
  ShardSymbolTable s1;
  ShardSymbolTable s2;
  const Symbol a = s1.intern("shard-alias-race");
  const Symbol b = s2.intern("shard-alias-race");
  EXPECT_EQ(a.view(), "shard-alias-race");
  EXPECT_EQ(b.view(), "shard-alias-race");
  EXPECT_EQ(a.str(), b.str());

  s1.merge();
  s2.merge();
  // First merge wins the index entry; both ids keep resolving.
  const auto winner = SymbolTable::global().find("shard-alias-race");
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(winner->view(), a.view());
  EXPECT_EQ(winner->view(), b.view());
}

TEST(ShardInternTest, ShardMergedSymbolsStringifyIdenticallyInReportJson) {
  // The report-layer regression: a log record whose symbols were interned
  // through a worker shard must serialize byte-identically to one whose
  // symbols went through the global table — even when the shard minted
  // alias ids. Record JSON is what campaign reports and the proxy's
  // /records endpoint render.
  logstore::LogRecord shard_rec;
  shard_rec.request_id = "test-json-1";
  {
    ShardSymbolTable shard;
    ScopedShardSymbols bind(&shard);
    shard_rec.src = Symbol("shard-json-src");
    shard_rec.dst = Symbol("shard-json-dst");
    shard.merge();
  }

  logstore::LogRecord global_rec;
  global_rec.request_id = "test-json-1";
  global_rec.src = Symbol("shard-json-src");
  global_rec.dst = Symbol("shard-json-dst");

  EXPECT_EQ(shard_rec.to_json().dump(), global_rec.to_json().dump());
}

// The TSan target: workers intern (hitting the snapshot, minting from
// blocks, publishing slots) and merge at boundaries while unbound threads
// intern through the mutex and a reader resolves views lock-free. Run under
// tools/check.sh TSAN=1 this exercises every publication edge in the
// two-tier design.
TEST(ShardInternTest, ConcurrentInternAndMergeStress) {
  constexpr int kWorkers = 4;
  constexpr int kNames = 1500;
  std::atomic<bool> stop{false};

  const Symbol hot("shard-stress-hot");
  std::thread reader([&stop, hot] {
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_EQ(hot.view(), "shard-stress-hot");
      // Global finds race against shard merges; any hit must stringify
      // correctly even while the snapshot is being swapped.
      const auto found = SymbolTable::global().find("shard-stress-shared-0");
      if (found.has_value()) {
        EXPECT_EQ(found->view(), "shard-stress-shared-0");
      }
    }
  });

  // One unbound writer exercises the mutex tier concurrently.
  std::thread unbound([] {
    for (int i = 0; i < kNames; ++i) {
      const Symbol s("shard-stress-shared-" + std::to_string(i % 64));
      EXPECT_FALSE(s.empty());
    }
  });

  std::vector<std::thread> workers;
  std::vector<std::vector<std::pair<Symbol, std::string>>> made(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([w, &made] {
      ShardSymbolTable shard;
      ScopedShardSymbols bind(&shard);
      for (int i = 0; i < kNames; ++i) {
        // Mix: cross-worker collisions (alias path), worker-unique names
        // (pure mint path), and snapshot hits after merges.
        const std::string name =
            i % 2 == 0
                ? "shard-stress-shared-" + std::to_string(i % 64)
                : "shard-stress-w" + std::to_string(w) + "-" +
                      std::to_string(i);
        made[w].emplace_back(Symbol(name), name);
        if (i % 200 == 199) shard.merge();  // result boundary
      }
      shard.merge();
    });
  }
  for (auto& t : workers) t.join();
  unbound.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Every symbol any worker minted stringifies as its source text, and
  // every shared name resolves through the merged global index.
  for (int w = 0; w < kWorkers; ++w) {
    for (const auto& [sym, text] : made[w]) {
      EXPECT_EQ(sym.view(), text);
    }
  }
  for (int i = 0; i < 64; ++i) {
    const std::string name = "shard-stress-shared-" + std::to_string(i);
    const auto found = SymbolTable::global().find(name);
    ASSERT_TRUE(found.has_value()) << name;
    EXPECT_EQ(found->view(), name);
  }
}

TEST(ShardInternTest, BlockExhaustionKeepsMinting) {
  // Push one shard through several id blocks; ids stay distinct and every
  // view stays correct (covers the reserve_block refill edge).
  ShardSymbolTable shard;
  ScopedShardSymbols bind(&shard);
  std::set<uint32_t> ids;
  for (int i = 0; i < 700; ++i) {  // > 2 blocks of 256
    const Symbol s("shard-block-" + std::to_string(i));
    EXPECT_TRUE(ids.insert(s.id()).second);
    EXPECT_EQ(s.view(), "shard-block-" + std::to_string(i));
  }
  shard.merge();
}

}  // namespace
}  // namespace gremlin
