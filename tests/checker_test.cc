// Edge-case tests for the pattern checks: empty observations, missing
// graphs, the windowed (Combine-based) bounded-retries formulation, and
// bulkhead rate verdicts against synthetic logs.
#include <gtest/gtest.h>

#include "control/checker.h"

namespace gremlin::control {
namespace {

using logstore::FaultKind;
using logstore::LogRecord;
using logstore::LogStore;
using logstore::MessageKind;

LogRecord rec(int64_t ts_ms, const std::string& id, const std::string& src,
              const std::string& dst, MessageKind kind, int status = 200,
              int64_t latency_ms = 10) {
  LogRecord r;
  r.timestamp = msec(ts_ms);
  r.request_id = id;
  r.src = src;
  r.dst = dst;
  r.kind = kind;
  r.status = status;
  r.latency = msec(latency_ms);
  return r;
}

TEST(CheckerEmptyTest, AllChecksFailOnEmptyStore) {
  LogStore store;
  topology::AppGraph graph;
  graph.add_edge("a", "b");
  graph.add_edge("a", "c");
  AssertionChecker checker(&store, &graph);
  EXPECT_FALSE(checker.has_timeouts("a", sec(1)).passed);
  EXPECT_FALSE(checker.has_bounded_retries("a", "b", 3).passed);
  EXPECT_FALSE(checker.has_circuit_breaker("a", "b", 5, sec(1), 1).passed);
  EXPECT_FALSE(checker.has_bulkhead("a", "b", 1.0).passed);
  EXPECT_FALSE(
      checker.has_bounded_retries_windowed("a", "b", 503, 5, sec(1), 5)
          .passed);
}

TEST(CheckerTest, BulkheadNeedsGraph) {
  LogStore store;
  AssertionChecker no_graph(&store, nullptr);
  const auto result = no_graph.has_bulkhead("a", "b", 1.0);
  EXPECT_FALSE(result.passed);
  EXPECT_NE(result.detail.find("graph"), std::string::npos);
}

TEST(CheckerTest, BulkheadNoOtherDependents) {
  LogStore store;
  topology::AppGraph graph;
  graph.add_edge("a", "slow");
  AssertionChecker checker(&store, &graph);
  const auto result = checker.has_bulkhead("a", "slow", 1.0);
  EXPECT_FALSE(result.passed);
  EXPECT_NE(result.detail.find("no dependents other than"),
            std::string::npos);
}

TEST(CheckerTest, BulkheadRateVerdicts) {
  LogStore store;
  topology::AppGraph graph;
  graph.add_edge("a", "slow");
  graph.add_edge("a", "fast");
  // 11 requests over 1s to the healthy dependent: 10 req/s.
  for (int i = 0; i <= 10; ++i) {
    store.append(rec(i * 100, "test-" + std::to_string(i), "a", "fast",
                     MessageKind::kRequest));
  }
  AssertionChecker checker(&store, &graph);
  EXPECT_TRUE(checker.has_bulkhead("a", "slow", 5.0).passed);
  EXPECT_FALSE(checker.has_bulkhead("a", "slow", 20.0).passed);
}

TEST(CheckerTest, WindowedBoundedRetriesPassAndFail) {
  topology::AppGraph graph;
  graph.add_edge("a", "b");

  // PASS case: 5 failures then only 2 requests in the next minute.
  {
    LogStore store;
    for (int i = 0; i < 5; ++i) {
      store.append(rec(i * 10, "t", "a", "b", MessageKind::kResponse, 503));
    }
    store.append(rec(100, "t", "a", "b", MessageKind::kRequest));
    store.append(rec(200, "t", "a", "b", MessageKind::kRequest));
    AssertionChecker checker(&store, &graph);
    EXPECT_TRUE(checker
                    .has_bounded_retries_windowed("a", "b", 503, 5,
                                                  minutes(1), 5)
                    .passed);
  }
  // FAIL case: 10 requests follow within the window.
  {
    LogStore store;
    for (int i = 0; i < 5; ++i) {
      store.append(rec(i * 10, "t", "a", "b", MessageKind::kResponse, 503));
    }
    for (int i = 0; i < 10; ++i) {
      store.append(rec(100 + i * 10, "t", "a", "b", MessageKind::kRequest));
    }
    AssertionChecker checker(&store, &graph);
    EXPECT_FALSE(checker
                     .has_bounded_retries_windowed("a", "b", 503, 5,
                                                   minutes(1), 5)
                     .passed);
  }
}

TEST(CheckerTest, CircuitBreakerDetailMentionsProbeState) {
  topology::AppGraph graph;
  graph.add_edge("a", "b");
  LogStore store;
  // 3 consecutive failures, quiet 10s, then a successful probe.
  for (int i = 0; i < 3; ++i) {
    store.append(rec(i * 10, "t", "a", "b", MessageKind::kResponse, 503));
  }
  store.append(rec(20 + 10000, "t2", "a", "b", MessageKind::kRequest));
  store.append(
      rec(20 + 10010, "t2", "a", "b", MessageKind::kResponse, 200));
  AssertionChecker checker(&store, &graph);
  const auto result = checker.has_circuit_breaker("a", "b", 3, sec(5), 1);
  EXPECT_TRUE(result.passed) << result.detail;
  EXPECT_NE(result.detail.find("breaker closed"), std::string::npos);
}

TEST(CheckerTest, CircuitBreakerCountsResetFailures) {
  // Status 0 (connection reset / client gave up) counts toward the trip.
  topology::AppGraph graph;
  graph.add_edge("a", "b");
  LogStore store;
  for (int i = 0; i < 3; ++i) {
    store.append(rec(i * 10, "t", "a", "b", MessageKind::kResponse, 0));
  }
  AssertionChecker checker(&store, &graph);
  const auto result = checker.has_circuit_breaker("a", "b", 3, sec(5), 1);
  EXPECT_TRUE(result.passed) << result.detail;
}

TEST(CheckerTest, SuccessBreaksFailureRun) {
  topology::AppGraph graph;
  graph.add_edge("a", "b");
  LogStore store;
  // fail, fail, success, fail, fail — never 3 consecutive.
  store.append(rec(0, "t", "a", "b", MessageKind::kResponse, 503));
  store.append(rec(10, "t", "a", "b", MessageKind::kResponse, 503));
  store.append(rec(20, "t", "a", "b", MessageKind::kResponse, 200));
  store.append(rec(30, "t", "a", "b", MessageKind::kResponse, 503));
  store.append(rec(40, "t", "a", "b", MessageKind::kResponse, 503));
  AssertionChecker checker(&store, &graph);
  const auto result = checker.has_circuit_breaker("a", "b", 3, sec(1), 1);
  EXPECT_FALSE(result.passed);
  EXPECT_NE(result.detail.find("never observed"), std::string::npos);
}

TEST(CheckerTest, TimeoutsUsesUntamperedLatency) {
  // Latency of 3s but all injected by Gremlin on the measured edge: the
  // service itself replied fast, so the check passes.
  topology::AppGraph graph;
  graph.add_edge("up", "svc");
  LogStore store;
  LogRecord r = rec(0, "t", "up", "svc", MessageKind::kResponse, 200, 3010);
  r.fault = FaultKind::kDelay;
  r.injected_delay = sec(3);
  store.append(r);
  AssertionChecker checker(&store, &graph);
  EXPECT_TRUE(checker.has_timeouts("svc", sec(1)).passed);
}

TEST(CheckerTest, BoundedRetriesScopesByIdPattern) {
  topology::AppGraph graph;
  graph.add_edge("a", "b");
  LogStore store;
  // A "prod" flow with a storm (should be ignored under the test pattern)
  // and a compliant "test" flow.
  for (int i = 0; i < 10; ++i) {
    store.append(rec(i, "prod-1", "a", "b", MessageKind::kRequest));
  }
  store.append(rec(11, "prod-1", "a", "b", MessageKind::kResponse, 503));
  store.append(rec(20, "test-1", "a", "b", MessageKind::kRequest));
  store.append(rec(21, "test-1", "a", "b", MessageKind::kResponse, 503));
  store.append(rec(22, "test-1", "a", "b", MessageKind::kRequest));
  store.append(rec(23, "test-1", "a", "b", MessageKind::kResponse, 200));
  AssertionChecker checker(&store, &graph);
  EXPECT_TRUE(checker.has_bounded_retries("a", "b", 3, "test-*").passed);
  EXPECT_FALSE(checker.has_bounded_retries("a", "b", 3, "*").passed);
}

}  // namespace
}  // namespace gremlin::control
