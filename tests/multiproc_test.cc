// Multi-process campaign sharding tests: the determinism contract extended
// across process boundaries. A campaign run at any procs × threads
// combination — warm or cold — must be byte-identical (fingerprint() AND
// verdict_fingerprint()) to the sequential single-process reference, and
// SIGKILLing a worker mid-campaign must cost wall clock only: the dead
// shard's unfinished lease is re-queued onto survivors and the merged
// result is unchanged.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "campaign/app_spec.h"
#include "campaign/process_pool.h"
#include "campaign/runner.h"

namespace gremlin::campaign {
namespace {

std::vector<Experiment> buggy_tree_sweep() {
  const AppSpec app = AppSpec::buggy_tree();
  SweepOptions options;
  options.load.count = 30;
  options.load.gap = msec(5);
  options.seed = 42;
  return generate_sweep(app, app.probe_graph(), options);
}

RunnerOptions opts(int procs, int threads, bool warm) {
  RunnerOptions o;
  o.procs = procs;
  o.threads = threads;
  o.warm_worlds = warm;
  o.keep_latencies = true;  // byte-identity must cover raw latencies too
  o.early_exit = false;     // full runs: fingerprints cover every request
  return o;
}

TEST(MultiprocTest, AvailableOnPosix) { EXPECT_TRUE(multiproc_available()); }

TEST(MultiprocTest, ByteIdenticalAcrossProcsThreadsMatrix) {
  if (!multiproc_available()) GTEST_SKIP() << "no fork on this platform";
  const auto experiments = buggy_tree_sweep();

  for (const bool warm : {true, false}) {
    const CampaignResult reference =
        CampaignRunner(opts(1, 1, warm)).run(experiments);
    ASSERT_EQ(reference.experiments.size(), experiments.size());
    ASSERT_EQ(reference.procs, 1);

    struct Combo {
      int procs;
      int threads;
    };
    for (const Combo c : {Combo{2, 1}, Combo{2, 2}, Combo{4, 1}}) {
      const CampaignResult sharded =
          CampaignRunner(opts(c.procs, c.threads, warm)).run(experiments);
      EXPECT_EQ(sharded.procs, c.procs);
      EXPECT_EQ(sharded.threads, c.threads);
      ASSERT_EQ(sharded.experiments.size(), experiments.size());
      EXPECT_EQ(sharded.fingerprint(), reference.fingerprint())
          << "procs=" << c.procs << " threads=" << c.threads
          << " warm=" << warm;
      EXPECT_EQ(sharded.verdict_fingerprint(),
                reference.verdict_fingerprint())
          << "procs=" << c.procs << " threads=" << c.threads
          << " warm=" << warm;
      // Merge is in experiment order, independent of delivery order.
      for (size_t i = 0; i < experiments.size(); ++i) {
        ASSERT_EQ(sharded.experiments[i].id, experiments[i].id);
      }
    }
  }
}

TEST(MultiprocTest, EarlyExitVerdictsMatchSingleProcess) {
  if (!multiproc_available()) GTEST_SKIP() << "no fork on this platform";
  const auto experiments = buggy_tree_sweep();
  RunnerOptions single = opts(1, 1, true);
  single.early_exit = true;
  RunnerOptions sharded_opts = opts(2, 1, true);
  sharded_opts.early_exit = true;

  const CampaignResult reference = CampaignRunner(single).run(experiments);
  const CampaignResult sharded =
      CampaignRunner(sharded_opts).run(experiments);
  // Early exit preserves byte-identity across procs too: whether a sim
  // stops early depends only on the experiment, never on the shard.
  EXPECT_EQ(sharded.fingerprint(), reference.fingerprint());
  EXPECT_EQ(sharded.verdict_fingerprint(), reference.verdict_fingerprint());
}

TEST(MultiprocTest, OnResultFiresOncePerExperiment) {
  if (!multiproc_available()) GTEST_SKIP() << "no fork on this platform";
  const auto experiments = buggy_tree_sweep();
  std::atomic<size_t> calls{0};
  RunnerOptions o = opts(2, 1, true);
  o.on_result = [&calls](const ExperimentResult&) { ++calls; };
  const CampaignResult result = CampaignRunner(o).run(experiments);
  EXPECT_EQ(result.experiments.size(), experiments.size());
  EXPECT_EQ(calls.load(), experiments.size());
}

TEST(MultiprocTest, SingleExperimentSkipsFork) {
  // One experiment cannot be sharded; the runner must stay in-process
  // (procs reports 1, result identical to a direct run).
  auto experiments = buggy_tree_sweep();
  experiments.resize(1);
  const CampaignResult result =
      CampaignRunner(opts(4, 1, true)).run(experiments);
  EXPECT_EQ(result.procs, 1);
  const CampaignResult reference =
      CampaignRunner(opts(1, 1, true)).run(experiments);
  EXPECT_EQ(result.fingerprint(), reference.fingerprint());
}

TEST(MultiprocCrashTest, KilledWorkerLeaseIsRequeued) {
  if (!multiproc_available()) GTEST_SKIP() << "no fork on this platform";
  const auto experiments = buggy_tree_sweep();
  const CampaignResult reference =
      CampaignRunner(opts(1, 1, true)).run(experiments);

  // SIGKILL the first worker after it has streamed a few results: its
  // announced-but-undelivered lease plus everything it would have claimed
  // must be picked up by the surviving worker (or the parent inline).
  MultiprocHooks hooks;
  hooks.kill_first_worker_after_results = 3;
  const CampaignResult survived =
      run_multiproc(experiments, opts(2, 1, true), &hooks);
  ASSERT_EQ(survived.experiments.size(), experiments.size());
  EXPECT_EQ(survived.fingerprint(), reference.fingerprint());
  EXPECT_EQ(survived.verdict_fingerprint(), reference.verdict_fingerprint());
}

TEST(MultiprocCrashTest, ImmediateKillStillCompletes) {
  if (!multiproc_available()) GTEST_SKIP() << "no fork on this platform";
  const auto experiments = buggy_tree_sweep();
  const CampaignResult reference =
      CampaignRunner(opts(1, 1, true)).run(experiments);

  // Kill before the first result: the dead worker delivered nothing, so
  // recovery has to re-queue its entire announced lease.
  MultiprocHooks hooks;
  hooks.kill_first_worker_after_results = 0;
  const CampaignResult survived =
      run_multiproc(experiments, opts(2, 1, true), &hooks);
  ASSERT_EQ(survived.experiments.size(), experiments.size());
  EXPECT_EQ(survived.fingerprint(), reference.fingerprint());
}

}  // namespace
}  // namespace gremlin::campaign
