// Unit tests for the HTTP message model and the incremental HTTP/1.1
// parser: headers, serialization round-trips, Content-Length and chunked
// bodies, byte-at-a-time feeding, pipelining, and malformed input.
#include <gtest/gtest.h>

#include "httpmsg/parser.h"

namespace gremlin::httpmsg {
namespace {

// ----------------------------------------------------------------- headers

TEST(HeadersTest, CaseInsensitiveAccess) {
  Headers h;
  h.set("Content-Type", "application/json");
  EXPECT_EQ(h.get("content-type"), "application/json");
  EXPECT_EQ(h.get("CONTENT-TYPE"), "application/json");
  EXPECT_TRUE(h.has("Content-type"));
  EXPECT_FALSE(h.has("Accept"));
  EXPECT_EQ(h.get_or("Accept", "*/*"), "*/*");
}

TEST(HeadersTest, SetReplacesAddAppends) {
  Headers h;
  h.add("X-Multi", "one");
  h.add("x-multi", "two");
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.get("X-Multi"), "one");  // first value
  h.set("X-MULTI", "three");
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.get("x-multi"), "three");
  EXPECT_EQ(h.remove("x-multi"), 1);
  EXPECT_TRUE(h.empty());
}

TEST(HeadersTest, ContentLengthParsing) {
  Headers h;
  EXPECT_FALSE(h.content_length().has_value());
  h.set("Content-Length", "42");
  EXPECT_EQ(h.content_length(), 42u);
  h.set("Content-Length", "garbage");
  EXPECT_FALSE(h.content_length().has_value());
  h.set("Content-Length", "12x");
  EXPECT_FALSE(h.content_length().has_value());
}

// --------------------------------------------------------------- serialize

TEST(SerializeTest, RequestWithBody) {
  Request req;
  req.method = "POST";
  req.target = "/search";
  req.headers.set(kRequestIdHeader, "test-1");
  req.body = "q=payments";
  const std::string wire = serialize(req);
  EXPECT_NE(wire.find("POST /search HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("X-Gremlin-ID: test-1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 10\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nq=payments"), std::string::npos);
}

TEST(SerializeTest, ContentLengthAlwaysMatchesBody) {
  Request req;
  req.headers.set("Content-Length", "9999");  // stale; must be corrected
  req.body = "abc";
  const std::string wire = serialize(req);
  EXPECT_NE(wire.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("9999"), std::string::npos);
}

TEST(SerializeTest, ResponseUsesCanonicalReason) {
  Response resp = make_response(503);
  const std::string wire = serialize(resp);
  EXPECT_NE(wire.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(418), "Unknown");
}

// ------------------------------------------------------------------ parser

TEST(ParserTest, SimpleRequest) {
  Parser p(Parser::Kind::kRequest);
  const std::string wire =
      "GET /api?q=1 HTTP/1.1\r\nHost: svc\r\nX-Gremlin-ID: test-9\r\n"
      "Content-Length: 5\r\n\r\nhello";
  auto n = p.feed(wire);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), wire.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().method, "GET");
  EXPECT_EQ(p.request().target, "/api?q=1");
  EXPECT_EQ(p.request().version, "HTTP/1.1");
  EXPECT_EQ(p.request().request_id(), "test-9");
  EXPECT_EQ(p.request().body, "hello");
}

TEST(ParserTest, RequestWithoutBodyCompletesAtHeaders) {
  Parser p(Parser::Kind::kRequest);
  ASSERT_TRUE(p.feed("GET / HTTP/1.1\r\nHost: x\r\n\r\n").ok());
  EXPECT_TRUE(p.complete());
  EXPECT_TRUE(p.request().body.empty());
}

TEST(ParserTest, SimpleResponse) {
  Parser p(Parser::Kind::kResponse);
  ASSERT_TRUE(
      p.feed("HTTP/1.1 503 Service Unavailable\r\nContent-Length: 4\r\n"
             "\r\nbusy")
          .ok());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.response().status, 503);
  EXPECT_EQ(p.response().reason, "Service Unavailable");
  EXPECT_EQ(p.response().body, "busy");
}

TEST(ParserTest, ByteAtATime) {
  Parser p(Parser::Kind::kRequest);
  const std::string wire =
      "POST /x HTTP/1.1\r\nContent-Length: 3\r\nA: b\r\n\r\nxyz";
  for (const char c : wire) {
    auto n = p.feed(std::string_view(&c, 1));
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(n.value(), 1u);
  }
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().body, "xyz");
  EXPECT_EQ(p.request().headers.get("a"), "b");
}

TEST(ParserTest, PipelinedRequestsLeaveSurplus) {
  Parser p(Parser::Kind::kRequest);
  const std::string first = "GET /1 HTTP/1.1\r\n\r\n";
  const std::string second = "GET /2 HTTP/1.1\r\n\r\n";
  auto n = p.feed(first + second);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), first.size());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().target, "/1");
  p.reset();
  n = p.feed(second);
  ASSERT_TRUE(n.ok());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().target, "/2");
}

TEST(ParserTest, ChunkedBody) {
  Parser p(Parser::Kind::kResponse);
  ASSERT_TRUE(p.feed("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                     "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n")
                  .ok());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.response().body, "hello world");
}

TEST(ParserTest, ChunkedWithExtensionAndTrailer) {
  Parser p(Parser::Kind::kResponse);
  ASSERT_TRUE(p.feed("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                     "3;ext=1\r\nabc\r\n0\r\nX-Trailer: v\r\n\r\n")
                  .ok());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.response().body, "abc");
}

TEST(ParserTest, ResponseUntilClose) {
  Parser p(Parser::Kind::kResponse);
  ASSERT_TRUE(p.feed("HTTP/1.1 200 OK\r\n\r\npartial").ok());
  EXPECT_FALSE(p.complete());
  ASSERT_TRUE(p.feed(" body").ok());
  p.finish_eof();
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.response().body, "partial body");
}

TEST(ParserTest, LeadingCrlfTolerated) {
  Parser p(Parser::Kind::kRequest);
  ASSERT_TRUE(p.feed("\r\nGET / HTTP/1.1\r\n\r\n").ok());
  EXPECT_TRUE(p.complete());
}

TEST(ParserTest, BareLfLineEndingsAccepted) {
  Parser p(Parser::Kind::kRequest);
  ASSERT_TRUE(p.feed("GET / HTTP/1.1\nHost: x\n\n").ok());
  EXPECT_TRUE(p.complete());
  EXPECT_EQ(p.request().headers.get("Host"), "x");
}

struct MalformedCase {
  const char* name;
  const char* wire;
  Parser::Kind kind;
};

class MalformedTest : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(MalformedTest, Rejected) {
  const auto& c = GetParam();
  Parser p(c.kind);
  const auto n = p.feed(c.wire);
  EXPECT_TRUE(!n.ok() || p.state() == Parser::State::kError ||
              !p.complete())
      << c.name;
  if (!n.ok()) {
    EXPECT_EQ(p.state(), Parser::State::kError) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MalformedTest,
    ::testing::Values(
        MalformedCase{"bad_request_line", "GARBAGE\r\n\r\n",
                      Parser::Kind::kRequest},
        MalformedCase{"bad_version", "GET / JUNK/1.1\r\n\r\n",
                      Parser::Kind::kRequest},
        MalformedCase{"bad_status", "HTTP/1.1 banana OK\r\n\r\n",
                      Parser::Kind::kResponse},
        MalformedCase{"status_out_of_range", "HTTP/1.1 99 Low\r\n\r\n",
                      Parser::Kind::kResponse},
        MalformedCase{"header_no_colon",
                      "GET / HTTP/1.1\r\nBadHeader\r\n\r\n",
                      Parser::Kind::kRequest},
        MalformedCase{"empty_header_name",
                      "GET / HTTP/1.1\r\n: value\r\n\r\n",
                      Parser::Kind::kRequest},
        MalformedCase{"bad_chunk_size",
                      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n"
                      "\r\nzz\r\n",
                      Parser::Kind::kResponse}),
    [](const ::testing::TestParamInfo<MalformedCase>& info) {
      return info.param.name;
    });

TEST(ParserTest, SerializeParseRoundTrip) {
  Request req;
  req.method = "PUT";
  req.target = "/api/items/7";
  req.headers.set("X-Gremlin-ID", "test-42");
  req.headers.set("Content-Type", "application/json");
  req.body = R"({"key":"value"})";

  Parser p(Parser::Kind::kRequest);
  auto n = p.feed(serialize(req));
  ASSERT_TRUE(n.ok());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().method, req.method);
  EXPECT_EQ(p.request().target, req.target);
  EXPECT_EQ(p.request().body, req.body);
  EXPECT_EQ(p.request().request_id(), "test-42");
}

TEST(ParserTest, ResetAllowsReuse) {
  Parser p(Parser::Kind::kRequest);
  ASSERT_TRUE(p.feed("GET /a HTTP/1.1\r\n\r\n").ok());
  ASSERT_TRUE(p.complete());
  p.reset();
  EXPECT_EQ(p.state(), Parser::State::kStartLine);
  ASSERT_TRUE(p.feed("GET /b HTTP/1.1\r\n\r\n").ok());
  ASSERT_TRUE(p.complete());
  EXPECT_EQ(p.request().target, "/b");
}

}  // namespace
}  // namespace gremlin::httpmsg
