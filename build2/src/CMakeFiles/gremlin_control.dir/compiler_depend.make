# Empty compiler generated dependencies file for gremlin_control.
# This may be replaced when dependencies are built.
