file(REMOVE_RECURSE
  "CMakeFiles/gremlin_control.dir/control/assertions.cc.o"
  "CMakeFiles/gremlin_control.dir/control/assertions.cc.o.d"
  "CMakeFiles/gremlin_control.dir/control/checker.cc.o"
  "CMakeFiles/gremlin_control.dir/control/checker.cc.o.d"
  "CMakeFiles/gremlin_control.dir/control/collector.cc.o"
  "CMakeFiles/gremlin_control.dir/control/collector.cc.o.d"
  "CMakeFiles/gremlin_control.dir/control/failures.cc.o"
  "CMakeFiles/gremlin_control.dir/control/failures.cc.o.d"
  "CMakeFiles/gremlin_control.dir/control/orchestrator.cc.o"
  "CMakeFiles/gremlin_control.dir/control/orchestrator.cc.o.d"
  "CMakeFiles/gremlin_control.dir/control/recipe.cc.o"
  "CMakeFiles/gremlin_control.dir/control/recipe.cc.o.d"
  "CMakeFiles/gremlin_control.dir/control/translator.cc.o"
  "CMakeFiles/gremlin_control.dir/control/translator.cc.o.d"
  "libgremlin_control.a"
  "libgremlin_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
