
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/assertions.cc" "src/CMakeFiles/gremlin_control.dir/control/assertions.cc.o" "gcc" "src/CMakeFiles/gremlin_control.dir/control/assertions.cc.o.d"
  "/root/repo/src/control/checker.cc" "src/CMakeFiles/gremlin_control.dir/control/checker.cc.o" "gcc" "src/CMakeFiles/gremlin_control.dir/control/checker.cc.o.d"
  "/root/repo/src/control/collector.cc" "src/CMakeFiles/gremlin_control.dir/control/collector.cc.o" "gcc" "src/CMakeFiles/gremlin_control.dir/control/collector.cc.o.d"
  "/root/repo/src/control/failures.cc" "src/CMakeFiles/gremlin_control.dir/control/failures.cc.o" "gcc" "src/CMakeFiles/gremlin_control.dir/control/failures.cc.o.d"
  "/root/repo/src/control/orchestrator.cc" "src/CMakeFiles/gremlin_control.dir/control/orchestrator.cc.o" "gcc" "src/CMakeFiles/gremlin_control.dir/control/orchestrator.cc.o.d"
  "/root/repo/src/control/recipe.cc" "src/CMakeFiles/gremlin_control.dir/control/recipe.cc.o" "gcc" "src/CMakeFiles/gremlin_control.dir/control/recipe.cc.o.d"
  "/root/repo/src/control/translator.cc" "src/CMakeFiles/gremlin_control.dir/control/translator.cc.o" "gcc" "src/CMakeFiles/gremlin_control.dir/control/translator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/gremlin_faults.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_logstore.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_topology.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_resilience.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
