file(REMOVE_RECURSE
  "libgremlin_control.a"
)
