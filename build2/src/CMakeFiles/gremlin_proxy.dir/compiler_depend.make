# Empty compiler generated dependencies file for gremlin_proxy.
# This may be replaced when dependencies are built.
