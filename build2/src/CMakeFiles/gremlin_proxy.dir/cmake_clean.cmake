file(REMOVE_RECURSE
  "CMakeFiles/gremlin_proxy.dir/proxy/agent.cc.o"
  "CMakeFiles/gremlin_proxy.dir/proxy/agent.cc.o.d"
  "CMakeFiles/gremlin_proxy.dir/proxy/control_api.cc.o"
  "CMakeFiles/gremlin_proxy.dir/proxy/control_api.cc.o.d"
  "libgremlin_proxy.a"
  "libgremlin_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
