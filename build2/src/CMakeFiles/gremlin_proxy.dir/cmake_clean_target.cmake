file(REMOVE_RECURSE
  "libgremlin_proxy.a"
)
