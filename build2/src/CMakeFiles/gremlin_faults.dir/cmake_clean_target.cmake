file(REMOVE_RECURSE
  "libgremlin_faults.a"
)
