# Empty dependencies file for gremlin_faults.
# This may be replaced when dependencies are built.
