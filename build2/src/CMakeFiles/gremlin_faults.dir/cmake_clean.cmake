file(REMOVE_RECURSE
  "CMakeFiles/gremlin_faults.dir/faults/rule.cc.o"
  "CMakeFiles/gremlin_faults.dir/faults/rule.cc.o.d"
  "CMakeFiles/gremlin_faults.dir/faults/rule_engine.cc.o"
  "CMakeFiles/gremlin_faults.dir/faults/rule_engine.cc.o.d"
  "libgremlin_faults.a"
  "libgremlin_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
