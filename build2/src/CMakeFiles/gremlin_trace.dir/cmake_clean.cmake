file(REMOVE_RECURSE
  "CMakeFiles/gremlin_trace.dir/trace/trace.cc.o"
  "CMakeFiles/gremlin_trace.dir/trace/trace.cc.o.d"
  "libgremlin_trace.a"
  "libgremlin_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
