# Empty dependencies file for gremlin_trace.
# This may be replaced when dependencies are built.
