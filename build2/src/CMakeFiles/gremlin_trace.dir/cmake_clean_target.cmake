file(REMOVE_RECURSE
  "libgremlin_trace.a"
)
