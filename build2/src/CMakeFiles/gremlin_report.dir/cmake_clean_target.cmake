file(REMOVE_RECURSE
  "libgremlin_report.a"
)
