file(REMOVE_RECURSE
  "CMakeFiles/gremlin_report.dir/report/campaign_report.cc.o"
  "CMakeFiles/gremlin_report.dir/report/campaign_report.cc.o.d"
  "CMakeFiles/gremlin_report.dir/report/report.cc.o"
  "CMakeFiles/gremlin_report.dir/report/report.cc.o.d"
  "libgremlin_report.a"
  "libgremlin_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
