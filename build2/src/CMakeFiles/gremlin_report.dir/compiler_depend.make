# Empty compiler generated dependencies file for gremlin_report.
# This may be replaced when dependencies are built.
