# Empty dependencies file for gremlin_resilience.
# This may be replaced when dependencies are built.
