file(REMOVE_RECURSE
  "CMakeFiles/gremlin_resilience.dir/resilience/bulkhead.cc.o"
  "CMakeFiles/gremlin_resilience.dir/resilience/bulkhead.cc.o.d"
  "CMakeFiles/gremlin_resilience.dir/resilience/circuit_breaker.cc.o"
  "CMakeFiles/gremlin_resilience.dir/resilience/circuit_breaker.cc.o.d"
  "CMakeFiles/gremlin_resilience.dir/resilience/policy.cc.o"
  "CMakeFiles/gremlin_resilience.dir/resilience/policy.cc.o.d"
  "CMakeFiles/gremlin_resilience.dir/resilience/retry.cc.o"
  "CMakeFiles/gremlin_resilience.dir/resilience/retry.cc.o.d"
  "libgremlin_resilience.a"
  "libgremlin_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
