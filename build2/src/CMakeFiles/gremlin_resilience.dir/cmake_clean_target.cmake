file(REMOVE_RECURSE
  "libgremlin_resilience.a"
)
