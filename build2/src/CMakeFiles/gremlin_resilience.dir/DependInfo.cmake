
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resilience/bulkhead.cc" "src/CMakeFiles/gremlin_resilience.dir/resilience/bulkhead.cc.o" "gcc" "src/CMakeFiles/gremlin_resilience.dir/resilience/bulkhead.cc.o.d"
  "/root/repo/src/resilience/circuit_breaker.cc" "src/CMakeFiles/gremlin_resilience.dir/resilience/circuit_breaker.cc.o" "gcc" "src/CMakeFiles/gremlin_resilience.dir/resilience/circuit_breaker.cc.o.d"
  "/root/repo/src/resilience/policy.cc" "src/CMakeFiles/gremlin_resilience.dir/resilience/policy.cc.o" "gcc" "src/CMakeFiles/gremlin_resilience.dir/resilience/policy.cc.o.d"
  "/root/repo/src/resilience/retry.cc" "src/CMakeFiles/gremlin_resilience.dir/resilience/retry.cc.o" "gcc" "src/CMakeFiles/gremlin_resilience.dir/resilience/retry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/gremlin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
