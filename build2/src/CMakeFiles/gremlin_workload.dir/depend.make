# Empty dependencies file for gremlin_workload.
# This may be replaced when dependencies are built.
