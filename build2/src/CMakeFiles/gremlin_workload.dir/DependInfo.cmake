
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/gremlin_workload.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/gremlin_workload.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/stats.cc" "src/CMakeFiles/gremlin_workload.dir/workload/stats.cc.o" "gcc" "src/CMakeFiles/gremlin_workload.dir/workload/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/gremlin_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_resilience.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_topology.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_faults.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_logstore.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
