file(REMOVE_RECURSE
  "CMakeFiles/gremlin_workload.dir/workload/generator.cc.o"
  "CMakeFiles/gremlin_workload.dir/workload/generator.cc.o.d"
  "CMakeFiles/gremlin_workload.dir/workload/stats.cc.o"
  "CMakeFiles/gremlin_workload.dir/workload/stats.cc.o.d"
  "libgremlin_workload.a"
  "libgremlin_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
