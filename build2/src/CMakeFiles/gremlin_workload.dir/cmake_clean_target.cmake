file(REMOVE_RECURSE
  "libgremlin_workload.a"
)
