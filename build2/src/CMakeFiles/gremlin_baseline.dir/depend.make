# Empty dependencies file for gremlin_baseline.
# This may be replaced when dependencies are built.
