file(REMOVE_RECURSE
  "CMakeFiles/gremlin_baseline.dir/baseline/chaos.cc.o"
  "CMakeFiles/gremlin_baseline.dir/baseline/chaos.cc.o.d"
  "libgremlin_baseline.a"
  "libgremlin_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
