file(REMOVE_RECURSE
  "libgremlin_baseline.a"
)
