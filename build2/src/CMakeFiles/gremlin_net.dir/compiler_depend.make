# Empty compiler generated dependencies file for gremlin_net.
# This may be replaced when dependencies are built.
