file(REMOVE_RECURSE
  "CMakeFiles/gremlin_net.dir/net/socket.cc.o"
  "CMakeFiles/gremlin_net.dir/net/socket.cc.o.d"
  "libgremlin_net.a"
  "libgremlin_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
