file(REMOVE_RECURSE
  "libgremlin_net.a"
)
