file(REMOVE_RECURSE
  "CMakeFiles/gremlin_apps.dir/apps/enterprise.cc.o"
  "CMakeFiles/gremlin_apps.dir/apps/enterprise.cc.o.d"
  "CMakeFiles/gremlin_apps.dir/apps/outages.cc.o"
  "CMakeFiles/gremlin_apps.dir/apps/outages.cc.o.d"
  "CMakeFiles/gremlin_apps.dir/apps/trees.cc.o"
  "CMakeFiles/gremlin_apps.dir/apps/trees.cc.o.d"
  "CMakeFiles/gremlin_apps.dir/apps/wordpress.cc.o"
  "CMakeFiles/gremlin_apps.dir/apps/wordpress.cc.o.d"
  "libgremlin_apps.a"
  "libgremlin_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
