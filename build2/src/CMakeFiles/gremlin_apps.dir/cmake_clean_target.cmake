file(REMOVE_RECURSE
  "libgremlin_apps.a"
)
