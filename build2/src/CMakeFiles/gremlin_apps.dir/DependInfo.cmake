
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/enterprise.cc" "src/CMakeFiles/gremlin_apps.dir/apps/enterprise.cc.o" "gcc" "src/CMakeFiles/gremlin_apps.dir/apps/enterprise.cc.o.d"
  "/root/repo/src/apps/outages.cc" "src/CMakeFiles/gremlin_apps.dir/apps/outages.cc.o" "gcc" "src/CMakeFiles/gremlin_apps.dir/apps/outages.cc.o.d"
  "/root/repo/src/apps/trees.cc" "src/CMakeFiles/gremlin_apps.dir/apps/trees.cc.o" "gcc" "src/CMakeFiles/gremlin_apps.dir/apps/trees.cc.o.d"
  "/root/repo/src/apps/wordpress.cc" "src/CMakeFiles/gremlin_apps.dir/apps/wordpress.cc.o" "gcc" "src/CMakeFiles/gremlin_apps.dir/apps/wordpress.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/gremlin_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_control.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_workload.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_resilience.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_topology.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_faults.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_logstore.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
