# Empty compiler generated dependencies file for gremlin_apps.
# This may be replaced when dependencies are built.
