file(REMOVE_RECURSE
  "libgremlin_httpmsg.a"
)
