file(REMOVE_RECURSE
  "CMakeFiles/gremlin_httpmsg.dir/httpmsg/headers.cc.o"
  "CMakeFiles/gremlin_httpmsg.dir/httpmsg/headers.cc.o.d"
  "CMakeFiles/gremlin_httpmsg.dir/httpmsg/message.cc.o"
  "CMakeFiles/gremlin_httpmsg.dir/httpmsg/message.cc.o.d"
  "CMakeFiles/gremlin_httpmsg.dir/httpmsg/parser.cc.o"
  "CMakeFiles/gremlin_httpmsg.dir/httpmsg/parser.cc.o.d"
  "libgremlin_httpmsg.a"
  "libgremlin_httpmsg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_httpmsg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
