# Empty dependencies file for gremlin_httpmsg.
# This may be replaced when dependencies are built.
