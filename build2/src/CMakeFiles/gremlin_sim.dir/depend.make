# Empty dependencies file for gremlin_sim.
# This may be replaced when dependencies are built.
