file(REMOVE_RECURSE
  "CMakeFiles/gremlin_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/gremlin_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/gremlin_sim.dir/sim/network.cc.o"
  "CMakeFiles/gremlin_sim.dir/sim/network.cc.o.d"
  "CMakeFiles/gremlin_sim.dir/sim/pubsub.cc.o"
  "CMakeFiles/gremlin_sim.dir/sim/pubsub.cc.o.d"
  "CMakeFiles/gremlin_sim.dir/sim/service.cc.o"
  "CMakeFiles/gremlin_sim.dir/sim/service.cc.o.d"
  "CMakeFiles/gremlin_sim.dir/sim/sidecar.cc.o"
  "CMakeFiles/gremlin_sim.dir/sim/sidecar.cc.o.d"
  "CMakeFiles/gremlin_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/gremlin_sim.dir/sim/simulation.cc.o.d"
  "libgremlin_sim.a"
  "libgremlin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
