file(REMOVE_RECURSE
  "libgremlin_sim.a"
)
