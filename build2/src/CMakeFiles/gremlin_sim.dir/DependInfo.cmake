
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/gremlin_sim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/gremlin_sim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/network.cc" "src/CMakeFiles/gremlin_sim.dir/sim/network.cc.o" "gcc" "src/CMakeFiles/gremlin_sim.dir/sim/network.cc.o.d"
  "/root/repo/src/sim/pubsub.cc" "src/CMakeFiles/gremlin_sim.dir/sim/pubsub.cc.o" "gcc" "src/CMakeFiles/gremlin_sim.dir/sim/pubsub.cc.o.d"
  "/root/repo/src/sim/service.cc" "src/CMakeFiles/gremlin_sim.dir/sim/service.cc.o" "gcc" "src/CMakeFiles/gremlin_sim.dir/sim/service.cc.o.d"
  "/root/repo/src/sim/sidecar.cc" "src/CMakeFiles/gremlin_sim.dir/sim/sidecar.cc.o" "gcc" "src/CMakeFiles/gremlin_sim.dir/sim/sidecar.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/CMakeFiles/gremlin_sim.dir/sim/simulation.cc.o" "gcc" "src/CMakeFiles/gremlin_sim.dir/sim/simulation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/gremlin_common.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_faults.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_logstore.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_resilience.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
