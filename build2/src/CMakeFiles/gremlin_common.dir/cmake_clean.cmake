file(REMOVE_RECURSE
  "CMakeFiles/gremlin_common.dir/common/duration.cc.o"
  "CMakeFiles/gremlin_common.dir/common/duration.cc.o.d"
  "CMakeFiles/gremlin_common.dir/common/glob.cc.o"
  "CMakeFiles/gremlin_common.dir/common/glob.cc.o.d"
  "CMakeFiles/gremlin_common.dir/common/intern.cc.o"
  "CMakeFiles/gremlin_common.dir/common/intern.cc.o.d"
  "CMakeFiles/gremlin_common.dir/common/json.cc.o"
  "CMakeFiles/gremlin_common.dir/common/json.cc.o.d"
  "CMakeFiles/gremlin_common.dir/common/rng.cc.o"
  "CMakeFiles/gremlin_common.dir/common/rng.cc.o.d"
  "CMakeFiles/gremlin_common.dir/common/strings.cc.o"
  "CMakeFiles/gremlin_common.dir/common/strings.cc.o.d"
  "libgremlin_common.a"
  "libgremlin_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
