file(REMOVE_RECURSE
  "libgremlin_common.a"
)
