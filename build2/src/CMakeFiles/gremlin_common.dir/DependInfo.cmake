
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/duration.cc" "src/CMakeFiles/gremlin_common.dir/common/duration.cc.o" "gcc" "src/CMakeFiles/gremlin_common.dir/common/duration.cc.o.d"
  "/root/repo/src/common/glob.cc" "src/CMakeFiles/gremlin_common.dir/common/glob.cc.o" "gcc" "src/CMakeFiles/gremlin_common.dir/common/glob.cc.o.d"
  "/root/repo/src/common/intern.cc" "src/CMakeFiles/gremlin_common.dir/common/intern.cc.o" "gcc" "src/CMakeFiles/gremlin_common.dir/common/intern.cc.o.d"
  "/root/repo/src/common/json.cc" "src/CMakeFiles/gremlin_common.dir/common/json.cc.o" "gcc" "src/CMakeFiles/gremlin_common.dir/common/json.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/gremlin_common.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/gremlin_common.dir/common/rng.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/gremlin_common.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/gremlin_common.dir/common/strings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
