# Empty compiler generated dependencies file for gremlin_common.
# This may be replaced when dependencies are built.
