# Empty compiler generated dependencies file for gremlin_dsl.
# This may be replaced when dependencies are built.
