file(REMOVE_RECURSE
  "libgremlin_dsl.a"
)
