file(REMOVE_RECURSE
  "CMakeFiles/gremlin_dsl.dir/dsl/ast.cc.o"
  "CMakeFiles/gremlin_dsl.dir/dsl/ast.cc.o.d"
  "CMakeFiles/gremlin_dsl.dir/dsl/interp.cc.o"
  "CMakeFiles/gremlin_dsl.dir/dsl/interp.cc.o.d"
  "CMakeFiles/gremlin_dsl.dir/dsl/lexer.cc.o"
  "CMakeFiles/gremlin_dsl.dir/dsl/lexer.cc.o.d"
  "CMakeFiles/gremlin_dsl.dir/dsl/lowering.cc.o"
  "CMakeFiles/gremlin_dsl.dir/dsl/lowering.cc.o.d"
  "CMakeFiles/gremlin_dsl.dir/dsl/parser.cc.o"
  "CMakeFiles/gremlin_dsl.dir/dsl/parser.cc.o.d"
  "libgremlin_dsl.a"
  "libgremlin_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
