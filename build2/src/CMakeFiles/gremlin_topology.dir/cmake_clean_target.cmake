file(REMOVE_RECURSE
  "libgremlin_topology.a"
)
