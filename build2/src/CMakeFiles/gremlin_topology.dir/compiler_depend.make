# Empty compiler generated dependencies file for gremlin_topology.
# This may be replaced when dependencies are built.
