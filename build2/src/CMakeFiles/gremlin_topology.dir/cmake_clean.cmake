file(REMOVE_RECURSE
  "CMakeFiles/gremlin_topology.dir/topology/deployment.cc.o"
  "CMakeFiles/gremlin_topology.dir/topology/deployment.cc.o.d"
  "CMakeFiles/gremlin_topology.dir/topology/graph.cc.o"
  "CMakeFiles/gremlin_topology.dir/topology/graph.cc.o.d"
  "libgremlin_topology.a"
  "libgremlin_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
