# Empty compiler generated dependencies file for gremlin_registry.
# This may be replaced when dependencies are built.
