file(REMOVE_RECURSE
  "libgremlin_registry.a"
)
