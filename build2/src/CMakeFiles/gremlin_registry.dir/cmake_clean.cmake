file(REMOVE_RECURSE
  "CMakeFiles/gremlin_registry.dir/registry/registry.cc.o"
  "CMakeFiles/gremlin_registry.dir/registry/registry.cc.o.d"
  "libgremlin_registry.a"
  "libgremlin_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
