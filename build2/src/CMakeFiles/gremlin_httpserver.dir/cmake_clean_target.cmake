file(REMOVE_RECURSE
  "libgremlin_httpserver.a"
)
