# Empty compiler generated dependencies file for gremlin_httpserver.
# This may be replaced when dependencies are built.
