file(REMOVE_RECURSE
  "CMakeFiles/gremlin_httpserver.dir/httpserver/client.cc.o"
  "CMakeFiles/gremlin_httpserver.dir/httpserver/client.cc.o.d"
  "CMakeFiles/gremlin_httpserver.dir/httpserver/pool.cc.o"
  "CMakeFiles/gremlin_httpserver.dir/httpserver/pool.cc.o.d"
  "CMakeFiles/gremlin_httpserver.dir/httpserver/server.cc.o"
  "CMakeFiles/gremlin_httpserver.dir/httpserver/server.cc.o.d"
  "libgremlin_httpserver.a"
  "libgremlin_httpserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_httpserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
