# Empty compiler generated dependencies file for gremlin_campaign.
# This may be replaced when dependencies are built.
