file(REMOVE_RECURSE
  "CMakeFiles/gremlin_campaign.dir/campaign/app_spec.cc.o"
  "CMakeFiles/gremlin_campaign.dir/campaign/app_spec.cc.o.d"
  "CMakeFiles/gremlin_campaign.dir/campaign/experiment.cc.o"
  "CMakeFiles/gremlin_campaign.dir/campaign/experiment.cc.o.d"
  "CMakeFiles/gremlin_campaign.dir/campaign/runner.cc.o"
  "CMakeFiles/gremlin_campaign.dir/campaign/runner.cc.o.d"
  "libgremlin_campaign.a"
  "libgremlin_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
