file(REMOVE_RECURSE
  "libgremlin_campaign.a"
)
