file(REMOVE_RECURSE
  "CMakeFiles/gremlin_logstore.dir/logstore/record.cc.o"
  "CMakeFiles/gremlin_logstore.dir/logstore/record.cc.o.d"
  "CMakeFiles/gremlin_logstore.dir/logstore/store.cc.o"
  "CMakeFiles/gremlin_logstore.dir/logstore/store.cc.o.d"
  "libgremlin_logstore.a"
  "libgremlin_logstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_logstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
