# Empty compiler generated dependencies file for gremlin_logstore.
# This may be replaced when dependencies are built.
