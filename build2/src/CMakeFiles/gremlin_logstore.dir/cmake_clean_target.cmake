file(REMOVE_RECURSE
  "libgremlin_logstore.a"
)
