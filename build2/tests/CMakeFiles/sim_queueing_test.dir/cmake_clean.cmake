file(REMOVE_RECURSE
  "CMakeFiles/sim_queueing_test.dir/sim_queueing_test.cc.o"
  "CMakeFiles/sim_queueing_test.dir/sim_queueing_test.cc.o.d"
  "sim_queueing_test"
  "sim_queueing_test.pdb"
  "sim_queueing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_queueing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
