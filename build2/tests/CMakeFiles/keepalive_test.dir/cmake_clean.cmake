file(REMOVE_RECURSE
  "CMakeFiles/keepalive_test.dir/keepalive_test.cc.o"
  "CMakeFiles/keepalive_test.dir/keepalive_test.cc.o.d"
  "keepalive_test"
  "keepalive_test.pdb"
  "keepalive_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keepalive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
