# Empty dependencies file for keepalive_test.
# This may be replaced when dependencies are built.
