file(REMOVE_RECURSE
  "CMakeFiles/intern_test.dir/intern_test.cc.o"
  "CMakeFiles/intern_test.dir/intern_test.cc.o.d"
  "intern_test"
  "intern_test.pdb"
  "intern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
