# Empty dependencies file for intern_test.
# This may be replaced when dependencies are built.
