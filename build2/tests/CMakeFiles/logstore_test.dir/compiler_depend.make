# Empty compiler generated dependencies file for logstore_test.
# This may be replaced when dependencies are built.
