file(REMOVE_RECURSE
  "CMakeFiles/logstore_test.dir/logstore_test.cc.o"
  "CMakeFiles/logstore_test.dir/logstore_test.cc.o.d"
  "logstore_test"
  "logstore_test.pdb"
  "logstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
