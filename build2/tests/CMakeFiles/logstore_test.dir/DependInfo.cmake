
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/logstore_test.cc" "tests/CMakeFiles/logstore_test.dir/logstore_test.cc.o" "gcc" "tests/CMakeFiles/logstore_test.dir/logstore_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/CMakeFiles/gremlin_dsl.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_proxy.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_registry.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_httpserver.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_httpmsg.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_net.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_report.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_baseline.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_campaign.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_apps.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_control.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_trace.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_workload.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_resilience.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_topology.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_faults.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_logstore.dir/DependInfo.cmake"
  "/root/repo/build2/src/CMakeFiles/gremlin_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
