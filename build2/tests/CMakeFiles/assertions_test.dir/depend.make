# Empty dependencies file for assertions_test.
# This may be replaced when dependencies are built.
