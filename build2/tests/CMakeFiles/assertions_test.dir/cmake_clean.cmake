file(REMOVE_RECURSE
  "CMakeFiles/assertions_test.dir/assertions_test.cc.o"
  "CMakeFiles/assertions_test.dir/assertions_test.cc.o.d"
  "assertions_test"
  "assertions_test.pdb"
  "assertions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assertions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
