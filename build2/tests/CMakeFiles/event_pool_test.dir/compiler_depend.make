# Empty compiler generated dependencies file for event_pool_test.
# This may be replaced when dependencies are built.
