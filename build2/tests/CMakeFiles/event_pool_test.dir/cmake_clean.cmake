file(REMOVE_RECURSE
  "CMakeFiles/event_pool_test.dir/event_pool_test.cc.o"
  "CMakeFiles/event_pool_test.dir/event_pool_test.cc.o.d"
  "event_pool_test"
  "event_pool_test.pdb"
  "event_pool_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
