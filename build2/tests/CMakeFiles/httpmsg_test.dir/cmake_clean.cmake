file(REMOVE_RECURSE
  "CMakeFiles/httpmsg_test.dir/httpmsg_test.cc.o"
  "CMakeFiles/httpmsg_test.dir/httpmsg_test.cc.o.d"
  "httpmsg_test"
  "httpmsg_test.pdb"
  "httpmsg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/httpmsg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
