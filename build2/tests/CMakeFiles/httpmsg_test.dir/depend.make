# Empty dependencies file for httpmsg_test.
# This may be replaced when dependencies are built.
