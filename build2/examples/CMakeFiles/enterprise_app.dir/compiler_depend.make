# Empty compiler generated dependencies file for enterprise_app.
# This may be replaced when dependencies are built.
