file(REMOVE_RECURSE
  "CMakeFiles/enterprise_app.dir/enterprise_app.cc.o"
  "CMakeFiles/enterprise_app.dir/enterprise_app.cc.o.d"
  "enterprise_app"
  "enterprise_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
