file(REMOVE_RECURSE
  "CMakeFiles/recipe_dsl.dir/recipe_dsl.cc.o"
  "CMakeFiles/recipe_dsl.dir/recipe_dsl.cc.o.d"
  "recipe_dsl"
  "recipe_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recipe_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
