# Empty dependencies file for recipe_dsl.
# This may be replaced when dependencies are built.
