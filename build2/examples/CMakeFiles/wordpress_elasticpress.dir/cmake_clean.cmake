file(REMOVE_RECURSE
  "CMakeFiles/wordpress_elasticpress.dir/wordpress_elasticpress.cc.o"
  "CMakeFiles/wordpress_elasticpress.dir/wordpress_elasticpress.cc.o.d"
  "wordpress_elasticpress"
  "wordpress_elasticpress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordpress_elasticpress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
