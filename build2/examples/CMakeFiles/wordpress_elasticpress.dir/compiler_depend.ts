# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for wordpress_elasticpress.
