# Empty compiler generated dependencies file for wordpress_elasticpress.
# This may be replaced when dependencies are built.
