file(REMOVE_RECURSE
  "CMakeFiles/real_proxy_demo.dir/real_proxy_demo.cc.o"
  "CMakeFiles/real_proxy_demo.dir/real_proxy_demo.cc.o.d"
  "real_proxy_demo"
  "real_proxy_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_proxy_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
