# Empty dependencies file for real_proxy_demo.
# This may be replaced when dependencies are built.
