# Empty compiler generated dependencies file for chained_failures.
# This may be replaced when dependencies are built.
