file(REMOVE_RECURSE
  "CMakeFiles/chained_failures.dir/chained_failures.cc.o"
  "CMakeFiles/chained_failures.dir/chained_failures.cc.o.d"
  "chained_failures"
  "chained_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chained_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
