file(REMOVE_RECURSE
  "CMakeFiles/sidecar_mesh.dir/sidecar_mesh.cc.o"
  "CMakeFiles/sidecar_mesh.dir/sidecar_mesh.cc.o.d"
  "sidecar_mesh"
  "sidecar_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidecar_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
