# Empty dependencies file for sidecar_mesh.
# This may be replaced when dependencies are built.
