file(REMOVE_RECURSE
  "CMakeFiles/outage_recipes.dir/outage_recipes.cc.o"
  "CMakeFiles/outage_recipes.dir/outage_recipes.cc.o.d"
  "outage_recipes"
  "outage_recipes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outage_recipes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
