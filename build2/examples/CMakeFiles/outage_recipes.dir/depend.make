# Empty dependencies file for outage_recipes.
# This may be replaced when dependencies are built.
