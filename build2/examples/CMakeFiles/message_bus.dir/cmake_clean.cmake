file(REMOVE_RECURSE
  "CMakeFiles/message_bus.dir/message_bus.cc.o"
  "CMakeFiles/message_bus.dir/message_bus.cc.o.d"
  "message_bus"
  "message_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/message_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
