# Empty compiler generated dependencies file for message_bus.
# This may be replaced when dependencies are built.
