# Empty compiler generated dependencies file for bench_hotpath_alloc.
# This may be replaced when dependencies are built.
