file(REMOVE_RECURSE
  "CMakeFiles/bench_hotpath_alloc.dir/bench_hotpath_alloc.cc.o"
  "CMakeFiles/bench_hotpath_alloc.dir/bench_hotpath_alloc.cc.o.d"
  "bench_hotpath_alloc"
  "bench_hotpath_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hotpath_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
