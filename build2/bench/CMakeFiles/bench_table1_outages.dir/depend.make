# Empty dependencies file for bench_table1_outages.
# This may be replaced when dependencies are built.
