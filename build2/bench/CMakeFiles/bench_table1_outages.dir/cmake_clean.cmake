file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_outages.dir/bench_table1_outages.cc.o"
  "CMakeFiles/bench_table1_outages.dir/bench_table1_outages.cc.o.d"
  "bench_table1_outages"
  "bench_table1_outages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_outages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
