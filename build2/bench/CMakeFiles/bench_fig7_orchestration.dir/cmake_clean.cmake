file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_orchestration.dir/bench_fig7_orchestration.cc.o"
  "CMakeFiles/bench_fig7_orchestration.dir/bench_fig7_orchestration.cc.o.d"
  "bench_fig7_orchestration"
  "bench_fig7_orchestration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_orchestration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
