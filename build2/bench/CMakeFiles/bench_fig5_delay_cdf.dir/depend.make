# Empty dependencies file for bench_fig5_delay_cdf.
# This may be replaced when dependencies are built.
