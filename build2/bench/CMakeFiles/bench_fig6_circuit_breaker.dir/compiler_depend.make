# Empty compiler generated dependencies file for bench_fig6_circuit_breaker.
# This may be replaced when dependencies are built.
