file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_circuit_breaker.dir/bench_fig6_circuit_breaker.cc.o"
  "CMakeFiles/bench_fig6_circuit_breaker.dir/bench_fig6_circuit_breaker.cc.o.d"
  "bench_fig6_circuit_breaker"
  "bench_fig6_circuit_breaker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_circuit_breaker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
