file(REMOVE_RECURSE
  "CMakeFiles/bench_campaign_parallel.dir/bench_campaign_parallel.cc.o"
  "CMakeFiles/bench_campaign_parallel.dir/bench_campaign_parallel.cc.o.d"
  "bench_campaign_parallel"
  "bench_campaign_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_campaign_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
