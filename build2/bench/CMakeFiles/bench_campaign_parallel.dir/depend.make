# Empty dependencies file for bench_campaign_parallel.
# This may be replaced when dependencies are built.
