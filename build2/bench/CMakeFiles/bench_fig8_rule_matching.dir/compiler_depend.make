# Empty compiler generated dependencies file for bench_fig8_rule_matching.
# This may be replaced when dependencies are built.
