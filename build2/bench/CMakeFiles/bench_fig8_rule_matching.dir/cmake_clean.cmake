file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_rule_matching.dir/bench_fig8_rule_matching.cc.o"
  "CMakeFiles/bench_fig8_rule_matching.dir/bench_fig8_rule_matching.cc.o.d"
  "bench_fig8_rule_matching"
  "bench_fig8_rule_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_rule_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
