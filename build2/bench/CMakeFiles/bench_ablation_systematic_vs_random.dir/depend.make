# Empty dependencies file for bench_ablation_systematic_vs_random.
# This may be replaced when dependencies are built.
