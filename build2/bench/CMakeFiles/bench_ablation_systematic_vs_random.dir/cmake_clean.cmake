file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_systematic_vs_random.dir/bench_ablation_systematic_vs_random.cc.o"
  "CMakeFiles/bench_ablation_systematic_vs_random.dir/bench_ablation_systematic_vs_random.cc.o.d"
  "bench_ablation_systematic_vs_random"
  "bench_ablation_systematic_vs_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_systematic_vs_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
