# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build2/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_check_recipe "/root/repo/build2/tools/gremlin" "check" "/root/repo/examples/recipes/database_outage.recipe")
set_tests_properties(cli_check_recipe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_smoke "/root/repo/build2/tools/gremlin" "run" "/root/repo/tools/testdata/cli_smoke.recipe" "--trace")
set_tests_properties(cli_run_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run_detects_missing_breaker "/root/repo/build2/tools/gremlin" "run" "/root/repo/examples/recipes/overload_then_crash.recipe")
set_tests_properties(cli_run_detects_missing_breaker PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_recipe "/root/repo/build2/tools/gremlin" "check" "/root/repo/tools/testdata/cli_smoke.recipe.nonexistent")
set_tests_properties(cli_rejects_bad_recipe PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
