# Empty compiler generated dependencies file for gremlin_agent_tool.
# This may be replaced when dependencies are built.
