file(REMOVE_RECURSE
  "CMakeFiles/gremlin_agent_tool.dir/gremlin_agent.cc.o"
  "CMakeFiles/gremlin_agent_tool.dir/gremlin_agent.cc.o.d"
  "gremlin-agent"
  "gremlin-agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_agent_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
