file(REMOVE_RECURSE
  "CMakeFiles/gremlin_cli_tool.dir/gremlin_cli.cc.o"
  "CMakeFiles/gremlin_cli_tool.dir/gremlin_cli.cc.o.d"
  "gremlin"
  "gremlin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_cli_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
