# Empty compiler generated dependencies file for gremlin_cli_tool.
# This may be replaced when dependencies are built.
