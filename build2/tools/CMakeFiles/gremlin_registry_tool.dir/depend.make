# Empty dependencies file for gremlin_registry_tool.
# This may be replaced when dependencies are built.
