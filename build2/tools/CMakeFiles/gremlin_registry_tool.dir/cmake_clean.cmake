file(REMOVE_RECURSE
  "CMakeFiles/gremlin_registry_tool.dir/gremlin_registry.cc.o"
  "CMakeFiles/gremlin_registry_tool.dir/gremlin_registry.cc.o.d"
  "gremlin-registry"
  "gremlin-registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_registry_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
