# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/logstore_test[1]_include.cmake")
include("/root/repo/build/tests/faults_test[1]_include.cmake")
include("/root/repo/build/tests/resilience_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/assertions_test[1]_include.cmake")
include("/root/repo/build/tests/control_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/httpmsg_test[1]_include.cmake")
include("/root/repo/build/tests/proxy_test[1]_include.cmake")
include("/root/repo/build/tests/dsl_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/checker_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/registry_test[1]_include.cmake")
include("/root/repo/build/tests/collector_test[1]_include.cmake")
include("/root/repo/build/tests/sim_queueing_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/pubsub_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/crash_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/pool_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/keepalive_test[1]_include.cmake")
include("/root/repo/build/tests/context_test[1]_include.cmake")
